#include "sim/executor.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::sim {
namespace {

RunResult run_asm(const std::string& body, Iss& iss,
                  std::uint64_t max_insns = 1'000'000) {
  const auto prog = asmkit::assemble(body, kTextBase);
  iss.load(prog);
  return iss.run(max_insns);
}

std::uint32_t run_exit(const std::string& body) {
  Iss iss;
  const auto result = run_asm(body, iss);
  EXPECT_TRUE(result.halted);
  return result.exit_code;
}

TEST(Executor, ArithmeticAndFlags) {
  EXPECT_EQ(run_exit(R"(
_start: mov 7, %o0
        add %o0, 5, %o0
        ta 0
)"),
            12u);
  // subcc sets Z; be taken.
  EXPECT_EQ(run_exit(R"(
_start: mov 3, %l0
        subcc %l0, 3, %g0
        be yes
        nop
        mov 0, %o0
        ta 0
yes:    mov 1, %o0
        ta 0
)"),
            1u);
}

TEST(Executor, SignedUnsignedCompares) {
  // -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
  EXPECT_EQ(run_exit(R"(
_start: mov -1, %l0
        cmp %l0, 1
        bl signed_less
        nop
        mov 0, %o0
        ta 0
signed_less:
        cmp %l0, 1
        bgu unsigned_greater
        nop
        mov 1, %o0
        ta 0
unsigned_greater:
        mov 2, %o0
        ta 0
)"),
            2u);
}

TEST(Executor, ShiftSemantics) {
  EXPECT_EQ(run_exit(R"(
_start: mov -8, %l0
        sra %l0, 1, %o0
        ta 0
)"),
            static_cast<std::uint32_t>(-4));
  EXPECT_EQ(run_exit(R"(
_start: mov -8, %l0
        srl %l0, 28, %o0
        ta 0
)"),
            0xFu);
}

TEST(Executor, MulDivWithYRegister) {
  // umul writes high bits to %y.
  EXPECT_EQ(run_exit(R"(
_start: set 0x10000, %l0
        umul %l0, %l0, %g1   ! 2^32: low word 0, y = 1
        rd %y, %o0
        ta 0
)"),
            1u);
  // sdiv with sign-extended Y: -100 / 7 = -14.
  EXPECT_EQ(run_exit(R"(
_start: mov -100, %l0
        sra %l0, 31, %l1
        wr %l1, 0, %y
        sdiv %l0, 7, %o0
        ta 0
)"),
            static_cast<std::uint32_t>(-14));
  // udiv: (1<<32 | 0) / 2^16 with y=1 -> 0x10000.
  EXPECT_EQ(run_exit(R"(
_start: mov 1, %l1
        wr %l1, 0, %y
        mov 0, %l0
        set 0x10000, %l2
        udiv %l0, %l2, %o0
        ta 0
)"),
            0x10000u);
}

TEST(Executor, MemoryBytesHalfwordsWords) {
  EXPECT_EQ(run_exit(R"(
_start: set buf, %g1
        mov 0x7F, %l0
        stb %l0, [%g1]
        mov -2, %l1
        stb %l1, [%g1+1]
        ldsb [%g1+1], %l2    ! -2 sign extended
        ldub [%g1+1], %l3    ! 0xFE
        add %l2, %l3, %o0    ! -2 + 254 = 252
        ta 0
        .data
buf:    .word 0
)"),
            252u);
  EXPECT_EQ(run_exit(R"(
_start: set buf, %g1
        set 0x12345678, %l0
        st %l0, [%g1]
        lduh [%g1], %l1      ! big endian: high half first
        ldsh [%g1+2], %l2
        sub %l1, %l2, %o0    ! 0x1234 - 0x5678
        ta 0
        .data
buf:    .word 0
)"),
            static_cast<std::uint32_t>(0x1234 - 0x5678));
}

TEST(Executor, DoubleWordMemory) {
  EXPECT_EQ(run_exit(R"(
_start: set buf, %g1
        mov 1, %l0
        mov 2, %l1
        std %l0, [%g1]
        ldd [%g1], %l2      ! l2=1 l3=2
        add %l2, %l3, %o0
        ta 0
        .data
        .align 8
buf:    .word 0, 0
)"),
            3u);
}

TEST(Executor, DelaySlotSemantics) {
  // Delay slot of a taken branch executes.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        ba target
        add %o0, 1, %o0     ! delay slot: executes
        add %o0, 100, %o0   ! skipped
target: ta 0
)"),
            1u);
  // Annulled delay slot of an untaken conditional branch does not execute.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        cmp %o0, 1
        be,a target
        add %o0, 1, %o0     ! annulled: branch not taken
        add %o0, 10, %o0
target: ta 0
)"),
            10u);
  // ba,a always annuls its delay slot.
  EXPECT_EQ(run_exit(R"(
_start: mov 0, %o0
        ba,a target
        add %o0, 1, %o0     ! annulled
target: ta 0
)"),
            0u);
}

TEST(Executor, CallAndReturn) {
  EXPECT_EQ(run_exit(R"(
_start: call func
        nop
        add %o0, 1, %o0
        ta 0
func:   retl
        mov 41, %o0
)"),
            42u);
}

TEST(Executor, FpuDoubleArithmetic) {
  EXPECT_EQ(run_exit(R"(
_start: set a, %g1
        lddf [%g1], %f0
        lddf [%g1+8], %f2
        faddd %f0, %f2, %f4   ! 1.5 + 2.25 = 3.75
        fmuld %f4, %f2, %f6   ! 3.75 * 2.25 = 8.4375
        fdivd %f6, %f0, %f8   ! 8.4375 / 1.5 = 5.625
        fsqrtd %f2, %f10      ! 1.5
        fdtoi %f8, %f12
        stf %f12, [%g1+16]
        ld [%g1+16], %o0      ! trunc(5.625) = 5
        ta 0
        .data
        .align 8
a:      .double 1.5, 2.25
        .word 0, 0
)"),
            5u);
}

TEST(Executor, FpuCompareAndBranch) {
  EXPECT_EQ(run_exit(R"(
_start: set a, %g1
        lddf [%g1], %f0
        lddf [%g1+8], %f2
        fcmpd %f0, %f2
        nop
        fbl less
        nop
        mov 0, %o0
        ta 0
less:   mov 1, %o0
        ta 0
)"
                     R"(
        .data
        .align 8
a:      .double 1.0, 2.0
)"),
            1u);
}

TEST(Executor, FitodRoundTrip) {
  EXPECT_EQ(run_exit(R"(
_start: set buf, %g1
        mov -123, %l0
        st %l0, [%g1]
        ldf [%g1], %f0
        fitod %f0, %f2
        fnegs %f2, %f2        ! negate sign of high word => 123.0
        fdtoi %f2, %f4
        stf %f4, [%g1]
        ld [%g1], %o0
        ta 0
        .data
        .align 8
buf:    .word 0
)"),
            123u);
}

TEST(Executor, UartOutput) {
  Iss iss;
  const auto result = run_asm(R"(
_start: set 0x80000000, %g1
        mov 72, %l0          ! 'H'
        st %l0, [%g1]
        mov 105, %l0         ! 'i'
        st %l0, [%g1]
        ta 0
)",
                              iss);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(iss.bus().uart_output(), "Hi");
}

TEST(Executor, CountersMatchExecution) {
  Iss iss;
  // Loop of 10: each iteration subcc + bne + nop(delay) => 10 subcc,
  // 10 bne, 10 nops; plus mov at start, final mov+ta.
  const auto result = run_asm(R"(
_start: mov 10, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)",
                              iss);
  EXPECT_TRUE(result.halted);
  const auto& counts = iss.counters().counts;
  using isa::Op;
  EXPECT_EQ(counts[static_cast<std::size_t>(Op::kSubcc)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Op::kBicc)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Op::kNop)], 10u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Op::kOr)], 2u);  // two movs
  EXPECT_EQ(counts[static_cast<std::size_t>(Op::kTicc)], 1u);
  EXPECT_EQ(iss.counters().total(), result.instret);
}

TEST(Executor, DivisionByZeroFaults) {
  Iss iss;
  EXPECT_THROW(run_asm(R"(
_start: mov 0, %l1
        wr %l1, 0, %y
        mov 1, %l0
        udiv %l0, %g0, %o0
        ta 0
)",
                       iss),
               SimError);
}

TEST(Executor, MisalignedAccessFaults) {
  Iss iss;
  EXPECT_THROW(run_asm(R"(
_start: set 0x40000002, %g1
        ld [%g1], %o0
        ta 0
)",
                       iss),
               SimError);
}

TEST(Executor, MisalignedPcFaultsInBothDispatchModes) {
  // The pc alignment check must fire before any decode-cache or block-cache
  // indexing: a misaligned pc inside the text range would otherwise index
  // the wrong cache word (or silently round down) instead of faulting.
  const auto prog = asmkit::assemble(R"(
_start: nop
        ta 0
)",
                                     kTextBase);
  for (const auto dispatch : {Dispatch::kStep, Dispatch::kBlock}) {
    Iss iss;
    iss.load(prog);
    iss.cpu().pc = kTextBase + 2;
    iss.cpu().npc = kTextBase + 6;
    EXPECT_THROW(iss.run(16, dispatch), SimError);
  }
}

TEST(Executor, IllegalInstructionFaults) {
  Iss iss;
  EXPECT_THROW(run_asm(R"(
_start: .word 0
        ta 0
)",
                       iss),
               SimError);
}

TEST(Executor, MaxInsnBudgetStopsRunawayLoop) {
  Iss iss;
  const auto result = run_asm(R"(
_start: ba _start
        nop
)",
                              iss, 1000);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.instret, 1000u);
}

TEST(Executor, G0IsAlwaysZero) {
  EXPECT_EQ(run_exit(R"(
_start: mov 55, %g0
        mov %g0, %o0
        ta 0
)"),
            0u);
}

}  // namespace
}  // namespace nfp::sim
