// MVC codec: encoder <-> golden decoder consistency and quality.
#include "codecs/mvc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "codecs/bitio.h"
#include "codecs/sequence_gen.h"

namespace nfp::codec {
namespace {

std::vector<Frame> test_sequence(int kind = 0, int frames = 4) {
  return make_sequence(48, 48, frames, static_cast<SequenceKind>(kind), 7);
}

TEST(BitWriter, ExpGolombEncoding) {
  BitWriter bw;
  bw.ue(0);  // "1"
  bw.ue(1);  // "010"
  bw.ue(2);  // "011"
  bw.ue(6);  // "00111"
  EXPECT_EQ(bw.bit_count(), 1u + 3 + 3 + 5);
  // First byte: 1 010 011 0 -> 0xA6.
  EXPECT_EQ(bw.bytes()[0], 0xA6);
}

TEST(BitWriter, SignedMapping) {
  // se: 0->ue0, 1->ue1, -1->ue2, 2->ue3, -2->ue4.
  BitWriter a, b;
  a.se(-2);
  b.ue(4);
  EXPECT_EQ(a.bytes(), b.bytes());
  BitWriter c, d;
  c.se(3);
  d.ue(5);
  EXPECT_EQ(c.bytes(), d.bytes());
}

class MvcConfigs : public ::testing::TestWithParam<Config> {};

// The golden decoder must reproduce the encoder's closed-loop
// reconstruction bit-exactly — this validates the whole format.
TEST_P(MvcConfigs, DecoderMatchesEncoderReconstruction) {
  const auto frames = test_sequence();
  for (const int qp : {10, 32, 45}) {
    const auto enc = encode(frames, 48, 48, qp, GetParam());
    const auto dec = golden_decode(enc.stream);
    ASSERT_EQ(dec.status, 0);
    ASSERT_EQ(dec.frames.size(), enc.reconstruction.size());
    for (std::size_t f = 0; f < dec.frames.size(); ++f) {
      EXPECT_EQ(dec.frames[f], enc.reconstruction[f])
          << "config=" << to_string(GetParam()) << " qp=" << qp
          << " frame=" << f;
    }
  }
}

TEST_P(MvcConfigs, QualityReasonableAtLowQp) {
  const auto frames = test_sequence(2);
  const auto enc = encode(frames, 48, 48, 10, GetParam());
  const auto dec = golden_decode(enc.stream);
  ASSERT_EQ(dec.status, 0);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    EXPECT_GT(psnr(frames[f], dec.frames[f]), 32.0) << "frame " << f;
  }
}

TEST_P(MvcConfigs, HigherQpCompressesMore) {
  const auto frames = test_sequence(1);
  const auto lo = encode(frames, 48, 48, 10, GetParam());
  const auto hi = encode(frames, 48, 48, 45, GetParam());
  EXPECT_LT(hi.stream.payload.size(), lo.stream.payload.size());
  // ... and quality degrades.
  const auto dec_lo = golden_decode(lo.stream);
  const auto dec_hi = golden_decode(hi.stream);
  double p_lo = 0, p_hi = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    p_lo += psnr(frames[f], dec_lo.frames[f]);
    p_hi += psnr(frames[f], dec_hi.frames[f]);
  }
  EXPECT_GT(p_lo, p_hi);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MvcConfigs,
                         ::testing::Values(Config::kIntra, Config::kLowdelay,
                                           Config::kLowdelayP,
                                           Config::kRandomaccess),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "lowdelay_P"
                                      ? "lowdelayP"
                                      : to_string(info.param);
                         });

TEST(Mvc, InterBeatsIntraOnStaticContent) {
  // A panning sequence should compress better with motion compensation.
  const auto frames = make_sequence(48, 48, 5, SequenceKind::kPanningTexture, 3);
  const auto intra = encode(frames, 48, 48, 32, Config::kIntra);
  const auto inter = encode(frames, 48, 48, 32, Config::kLowdelayP);
  EXPECT_LT(inter.stream.payload.size(), intra.stream.payload.size());
}

TEST(Mvc, StatsProduced) {
  const auto frames = test_sequence();
  const auto enc = encode(frames, 48, 48, 32, Config::kLowdelay);
  const auto dec = golden_decode(enc.stream);
  EXPECT_GT(dec.rms_activity, 1.0);   // RMS of 8-bit video
  EXPECT_LT(dec.rms_activity, 256.0);
}

TEST(Mvc, InputBlobLayout) {
  const auto frames = test_sequence(0, 2);
  const auto enc = encode(frames, 48, 48, 32, Config::kIntra);
  const auto blob = enc.stream.to_input_blob();
  ASSERT_GE(blob.size(), 28u);
  EXPECT_EQ(blob[0], 0x4D);  // 'M'
  EXPECT_EQ(blob[3], 0x31);  // '1'
  // width at word 1, big endian.
  EXPECT_EQ(blob[7], 48);
  EXPECT_EQ(blob.size(), 28u + enc.stream.payload.size());
}

TEST(Mvc, RejectsBadParameters) {
  const auto frames = test_sequence(0, 1);
  EXPECT_THROW(encode(frames, 48, 48, 99, Config::kIntra),
               std::invalid_argument);
  EXPECT_THROW(encode(frames, 47, 48, 10, Config::kIntra),
               std::invalid_argument);
  EXPECT_THROW(encode(frames, 128, 48, 10, Config::kIntra),
               std::invalid_argument);
}

TEST(Mvc, QstepTableMatchesFormula) {
  // The Micro-C decoder's quantiser table is round(16 * 2^((qp-4)/6));
  // pin every entry through the dequantiser: dequant(level, qp) =
  // (level * qstep + 8) >> 4.
  for (int qp = 0; qp <= 51; ++qp) {
    const int qstep =
        static_cast<int>(16.0 * std::pow(2.0, (qp - 4) / 6.0) + 0.5);
    EXPECT_EQ(dequant_probe(1, qp), (qstep + 8) >> 4) << "qp " << qp;
    EXPECT_EQ(dequant_probe(5, qp), (5 * qstep + 8) >> 4) << "qp " << qp;
    EXPECT_EQ(dequant_probe(-3, qp), (-3 * qstep + 8) >> 4) << "qp " << qp;
  }
}

TEST(SequenceGen, DeterministicDistinctKinds) {
  const auto a = make_sequence(48, 48, 3, SequenceKind::kBouncingBlocks, 5);
  const auto b = make_sequence(48, 48, 3, SequenceKind::kBouncingBlocks, 5);
  const auto c = make_sequence(48, 48, 3, SequenceKind::kPanningTexture, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a[0], c[0]);
  // Motion: consecutive frames differ.
  EXPECT_NE(a[0], a[1]);
}

}  // namespace
}  // namespace nfp::codec
