// Micro-C compiler: integer-language tests (both ABIs share this path).
#include <gtest/gtest.h>

#include "mcc/lexer.h"
#include "support/mc_run.h"

namespace nfp::mcc {
namespace {

using nfp::test::mc_exit;
using nfp::test::mc_run;

TEST(MccBasic, ReturnsConstant) {
  EXPECT_EQ(mc_exit("int main() { return 42; }"), 42u);
}

TEST(MccBasic, ArithmeticPrecedence) {
  EXPECT_EQ(mc_exit("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11u);
  EXPECT_EQ(mc_exit("int main() { return (2 + 3) * 4; }"), 20u);
  EXPECT_EQ(mc_exit("int main() { return 17 % 5; }"), 2u);
}

TEST(MccBasic, SignedDivisionTruncates) {
  EXPECT_EQ(mc_exit("int main() { return -7 / 2 + 10; }"), 10u - 3u);
  EXPECT_EQ(mc_exit("int main() { return -7 % 2 + 10; }"), 10u - 1u);
  EXPECT_EQ(mc_exit("int main() { return 7 / -2 + 10; }"), 10u - 3u);
}

TEST(MccBasic, UnsignedDivision) {
  EXPECT_EQ(mc_exit("unsigned main() { unsigned a = 0xFFFFFFF0u;"
                    " return a / 16u; }"),
            0x0FFFFFFFu);
  EXPECT_EQ(mc_exit("unsigned main() { unsigned a = 0x80000001u;"
                    " return a % 7u; }"),
            0x80000001u % 7u);
}

TEST(MccBasic, BitOperations) {
  EXPECT_EQ(mc_exit("int main() { return (0xF0 | 0x0F) ^ 0x3C; }"),
            (0xF0u | 0x0Fu) ^ 0x3Cu);
  EXPECT_EQ(mc_exit("int main() { return ~0 + 2; }"), 1u);
  EXPECT_EQ(mc_exit("int main() { return 1 << 10; }"), 1024u);
  EXPECT_EQ(mc_exit("int main() { return -16 >> 2; }"),
            static_cast<std::uint32_t>(-4));
  EXPECT_EQ(mc_exit("int main() { unsigned x = 0x80000000u;"
                    " return (int)(x >> 28); }"),
            8u);
}

TEST(MccBasic, ComparisonsSignedUnsigned) {
  EXPECT_EQ(mc_exit("int main() { return -1 < 1; }"), 1u);
  EXPECT_EQ(mc_exit("int main() { unsigned a = 0xFFFFFFFFu;"
                    " return a > 1u; }"),
            1u);
  EXPECT_EQ(mc_exit("int main() { return (3 <= 3) + (3 < 3) + (4 >= 5); }"),
            1u);
}

TEST(MccBasic, ShortCircuit) {
  // The right side of && must not run when the left is false.
  EXPECT_EQ(mc_exit(R"(
int g;
int boom() { g = 99; return 1; }
int main() { g = 1; if (0 && boom()) { g = 50; } return g; }
)"),
            1u);
  EXPECT_EQ(mc_exit(R"(
int g;
int boom() { g = 99; return 1; }
int main() { g = 1; if (1 || boom()) { return g; } return 0; }
)"),
            1u);
  EXPECT_EQ(mc_exit("int main() { return (2 && 3) + (0 || 7 ? 10 : 20); }"),
            11u);
}

TEST(MccBasic, ControlFlow) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int sum = 0;
  for (int i = 1; i <= 10; i++) sum += i;
  return sum;
}
)"),
            55u);
  EXPECT_EQ(mc_exit(R"(
int main() {
  int n = 0;
  int i = 0;
  while (i < 20) {
    i = i + 1;
    if (i % 2 == 0) continue;
    if (i > 15) break;
    n = n + i;
  }
  return n;  /* 1+3+5+7+9+11+13+15 = 64 */
}
)"),
            64u);
  EXPECT_EQ(mc_exit(R"(
int main() {
  int x = 0;
  do { x++; } while (x < 5);
  return x;
}
)"),
            5u);
}

TEST(MccBasic, FunctionsAndRecursion) {
  EXPECT_EQ(mc_exit(R"(
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)"),
            144u);
  EXPECT_EQ(mc_exit(R"(
int add3(int a, int b, int c) { return a + b + c; }
int twice(int x) { return x + x; }
int main() { return add3(twice(1), twice(2), twice(3)); }
)"),
            12u);
}

TEST(MccBasic, ManyArguments) {
  EXPECT_EQ(mc_exit(R"(
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
  return a + b + c + d + e + f + g + h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
)"),
            36u);
}

TEST(MccBasic, GlobalsAndArrays) {
  EXPECT_EQ(mc_exit(R"(
int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main() {
  int sum = 0;
  for (int i = 0; i < 8; i++) sum += table[i];
  return sum;
}
)"),
            36u);
  EXPECT_EQ(mc_exit(R"(
int counter = 100;
int bump() { counter += 5; return counter; }
int main() { bump(); bump(); return counter; }
)"),
            110u);
}

TEST(MccBasic, TwoDimensionalArrays) {
  EXPECT_EQ(mc_exit(R"(
int m[3][4];
int main() {
  for (int r = 0; r < 3; r++)
    for (int c = 0; c < 4; c++)
      m[r][c] = r * 10 + c;
  return m[2][3] + m[1][0];
}
)"),
            23u + 10u);
}

TEST(MccBasic, PointersAndAddressOf) {
  EXPECT_EQ(mc_exit(R"(
void set(int* p, int v) { *p = v; }
int main() {
  int x = 1;
  set(&x, 77);
  return x;
}
)"),
            77u);
  EXPECT_EQ(mc_exit(R"(
int a[5] = {10, 20, 30, 40, 50};
int main() {
  int* p = a;
  p = p + 2;
  int* q = &a[4];
  return *p + (int)(q - p);  /* 30 + 2 */
}
)"),
            32u);
}

TEST(MccBasic, CharAndShortTypes) {
  EXPECT_EQ(mc_exit(R"(
unsigned char bytes[4];
int main() {
  bytes[0] = 250;
  bytes[1] = bytes[0] + 10;   /* wraps to 4 */
  char c = -3;
  short s = -2;
  unsigned short us = 65535;
  return bytes[1] + c + s + (us == 65535);  /* 4 - 3 - 2 + 1 */
}
)"),
            0u);
  EXPECT_EQ(mc_exit(R"(
short h[3] = {-1, 300, -300};
int main() { return h[0] + h[1] + h[2] + 1; }
)"),
            0u);
}

TEST(MccBasic, IncDecSemantics) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int i = 5;
  int a = i++;
  int b = ++i;
  int c = i--;
  int d = --i;
  return a * 1000 + b * 100 + c * 10 + d;  /* 5,7,7,5 */
}
)"),
            5u * 1000 + 7 * 100 + 7 * 10 + 5);
  EXPECT_EQ(mc_exit(R"(
int a[4] = {1, 2, 3, 4};
int main() {
  int i = 0;
  int x = a[i++];
  int y = a[i++];
  return x * 10 + y + i;  /* 12 + 2 */
}
)"),
            14u);
}

TEST(MccBasic, CompoundAssignEvaluatesLvalueOnce) {
  EXPECT_EQ(mc_exit(R"(
int a[4] = {1, 2, 3, 4};
int idx;
int next() { idx = idx + 1; return idx - 1; }
int main() {
  idx = 0;
  a[next()] += 100;  /* must bump a[0] exactly once */
  return a[0] * 10 + idx;
}
)"),
            1010u + 1u);
}

TEST(MccBasic, TernaryAndNestedCalls) {
  EXPECT_EQ(mc_exit(R"(
int maxi(int a, int b) { return a > b ? a : b; }
int main() { return maxi(maxi(3, 9), maxi(7, 2)); }
)"),
            9u);
}

TEST(MccBasic, SizeofAndCasts) {
  EXPECT_EQ(mc_exit("int main() { return sizeof(int) + sizeof(double) +"
                    " sizeof(char) + sizeof(int*); }"),
            4u + 8 + 1 + 4);
  EXPECT_EQ(mc_exit("int main() { return (char)300; }"),
            static_cast<std::uint32_t>(static_cast<char>(300)));
  EXPECT_EQ(mc_exit("int main() { return (unsigned char)300; }"), 44u);
}

TEST(MccBasic, PreprocessorDefinesAndConditionals) {
  EXPECT_EQ(mc_exit(R"(
#define BASE 40
#define TOTAL (BASE + 2)
int main() {
#ifdef MC_TARGET
  return TOTAL;
#else
  return 0;
#endif
}
)"),
            42u);
  EXPECT_EQ(mc_exit(R"(
#ifndef NOT_DEFINED
#define V 7
#else
#define V 9
#endif
int main() { return V; }
)"),
            7u);
}

TEST(MccBasic, UartOutputViaIntrinsic) {
  const auto run = mc_run(R"(
void print(char* s) {
  int i = 0;
  while (s[i] != 0) { mc_putc(s[i]); i++; }
}
int main() { print("hello\n"); return 0; }
)");
  EXPECT_EQ(run.uart, "hello\n");
}

TEST(MccBasic, UmulhiIntrinsic) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  unsigned a = 0x10000u;
  return (int)mc_umulhi(a * 16u, a);  /* (2^20 * 2^16) >> 32 = 16 */
}
)"),
            16u);
}

TEST(MccBasic, MemoryMappedIoPointers) {
  // Input/output window access through casted constant pointers.
  EXPECT_EQ(mc_exit(R"(
int main() {
  int* out = (int*)0x40C00000;
  out[0] = 123;
  out[1] = out[0] + 1;
  return out[1];
}
)"),
            124u);
}

TEST(MccBasic, StackedLocalArrays) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int buf[16];
  for (int i = 0; i < 16; i++) buf[i] = i * i;
  int sum = 0;
  for (int i = 0; i < 16; i++) sum += buf[i];
  return sum;  /* 1240 */
}
)"),
            1240u);
}

TEST(MccBasic, ScopesAndShadowing) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int x = 1;
  {
    int x = 2;
    { x = x + 5; }
    if (x != 7) return 100;
  }
  return x;
}
)"),
            1u);
}

TEST(MccBasic, WhileWithComplexCondition) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int i = 0;
  int j = 10;
  while (i < 5 && j > 6) { i++; j--; }
  return i * 10 + j;  /* stops when j==6: i=4, j=6 */
}
)"),
            46u);
}

TEST(MccBasic, CompileErrors) {
  mcc::Compiler comp;
  EXPECT_THROW(comp.compile({"int main() { return x; }"}), CompileError);
  EXPECT_THROW(comp.compile({"int main() { return f(1); }"}), CompileError);
  EXPECT_THROW(comp.compile({"int f(int a); int main() { return f(1, 2); }"
                             " int f(int a) { return a; }"}),
               CompileError);
  EXPECT_THROW(comp.compile({"int main() { int x = 1 }"}), CompileError);
  EXPECT_THROW(comp.compile({"int x; double x; int main() { return 0; }"}),
               CompileError);
  EXPECT_THROW(comp.compile({"int f() { return 1; }"}), CompileError);  // no main
  EXPECT_THROW(comp.compile({"int main() { break; }"}), CompileError);
}

TEST(MccBasic, PrototypesAllowForwardCalls) {
  EXPECT_EQ(mc_exit(R"(
int helper(int x);
int main() { return helper(20); }
int helper(int x) { return x * 2 + 2; }
)"),
            42u);
}

}  // namespace
}  // namespace nfp::mcc
