// Micro-C compiler stress battery: deeper programs exercising interactions
// between language features (the kind of combinations the workloads use).
#include <gtest/gtest.h>

#include "support/mc_run.h"

namespace nfp::mcc {
namespace {

using nfp::test::mc_exit;
using nfp::test::mc_run;

TEST(MccStress, DeepRecursionUsesStackFrames) {
  EXPECT_EQ(mc_exit(R"(
int depth(int n) {
  int local[4];
  local[0] = n;
  local[3] = n + 1;
  if (n == 0) return 0;
  return depth(n - 1) + local[3] - local[0];  /* +1 per level */
}
int main() { return depth(200); }
)"),
            200u);
}

TEST(MccStress, MutualRecursion) {
  EXPECT_EQ(mc_exit(R"(
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { return is_even(100) * 10 + is_odd(77); }
)"),
            11u);
}

TEST(MccStress, NestedLoopsWithBreakContinue) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int count = 0;
  for (int i = 0; i < 10; i++) {
    if (i % 3 == 0) continue;
    for (int j = 0; j < 10; j++) {
      if (j > i) break;
      count++;
    }
  }
  return count;
}
)"),
            // i in {1,2,4,5,7,8}: inner runs i+1 times -> 2+3+5+6+8+9 = 33
            33u);
}

TEST(MccStress, OperatorPrecedenceBattery) {
  // Mirror of host-evaluated expressions.
#define CHECK_EXPR(expr)                                          \
  EXPECT_EQ(mc_exit("int main() { return (" #expr ") & 0xFF; }"), \
            static_cast<std::uint32_t>((expr) & 0xFF))            \
      << #expr
  CHECK_EXPR(1 + 2 * 3 - 4 / 2);
  CHECK_EXPR(5 & 3 | 4 ^ 1);
  CHECK_EXPR(1 << 3 >> 1);
  CHECK_EXPR(10 - 3 - 2);
  CHECK_EXPR((7 & 12) == 4 ? 100 : 50);
  CHECK_EXPR(~5 & 0x3F);
  CHECK_EXPR(3 < 5 == 1);
  CHECK_EXPR(-7 % 3 + 10);
#undef CHECK_EXPR
}

TEST(MccStress, CharStringProcessing) {
  const auto run = mc_run(R"(
int mc_strlen(char* s) {
  int n = 0;
  while (s[n] != 0) n++;
  return n;
}
void reverse_print(char* s) {
  for (int i = mc_strlen(s) - 1; i >= 0; i--) mc_putc(s[i]);
}
int main() {
  reverse_print("stressed");
  return mc_strlen("hello") * 10;
}
)");
  EXPECT_EQ(run.uart, "desserts");
  EXPECT_EQ(run.exit_code, 50u);
}

TEST(MccStress, ByteBufferManipulation) {
  EXPECT_EQ(mc_exit(R"(
unsigned char buf[64];
int main() {
  /* fill, then checksum with rotation */
  for (int i = 0; i < 64; i++) buf[i] = (unsigned char)(i * 7 + 3);
  unsigned sum = 0;
  for (int i = 0; i < 64; i++) {
    sum = ((sum << 5) | (sum >> 27)) ^ buf[i];
  }
  return (int)(sum & 0xFF);
}
)"),
            [] {
              unsigned char buf[64];
              for (int i = 0; i < 64; ++i) {
                buf[i] = static_cast<unsigned char>(i * 7 + 3);
              }
              unsigned sum = 0;
              for (int i = 0; i < 64; ++i) {
                sum = ((sum << 5) | (sum >> 27)) ^ buf[i];
              }
              return sum & 0xFF;
            }());
}

TEST(MccStress, ThreeDimensionalArray) {
  EXPECT_EQ(mc_exit(R"(
int cube[3][4][5];
int main() {
  for (int a = 0; a < 3; a++)
    for (int b = 0; b < 4; b++)
      for (int c = 0; c < 5; c++)
        cube[a][b][c] = a * 100 + b * 10 + c;
  return cube[2][3][4] + cube[1][0][0];  /* 234 + 100 */
}
)"),
            334u);
}

TEST(MccStress, PointerToPointer) {
  EXPECT_EQ(mc_exit(R"(
int value;
void set_through(int** pp, int v) { **pp = v; }
int main() {
  int* p = &value;
  set_through(&p, 99);
  return value;
}
)"),
            99u);
}

TEST(MccStress, GlobalPointerInitialisedAtRuntime) {
  EXPECT_EQ(mc_exit(R"(
int data[4] = {5, 6, 7, 8};
int* cursor;
int next() { int v = *cursor; cursor = cursor + 1; return v; }
int main() {
  cursor = data;
  return next() * 100 + next() * 10 + next();
}
)"),
            567u);
}

TEST(MccStress, SwitchLikeChainedElse) {
  EXPECT_EQ(mc_exit(R"(
int classify(int x) {
  if (x < 0) return 0;
  else if (x == 0) return 1;
  else if (x < 10) return 2;
  else if (x < 100) return 3;
  else return 4;
}
int main() {
  return classify(-5) + classify(0) * 10 + classify(5) * 100 +
         classify(50) * 1000 + classify(500) * 10000;
}
)"),
            0u + 10u + 200u + 3000u + 40000u);
}

TEST(MccStress, LargeLocalFrame) {
  // Locals beyond the simm13 frame offset range exercise large-offset
  // addressing.
  EXPECT_EQ(mc_exit(R"(
int main() {
  int big[1500];
  for (int i = 0; i < 1500; i++) big[i] = i;
  int other = 7;
  return big[1499] % 256 + other;  /* 1499 % 256 = 219; +7 */
}
)"),
            226u);
}

TEST(MccStress, MixedSignednessArithmetic) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int s = -10;
  unsigned u = 3;
  /* usual conversions: s converts to unsigned */
  unsigned r = s + u;              /* 0xFFFFFFF9 */
  int cmp1 = s < (int)u;           /* signed: 1 */
  int cmp2 = (unsigned)s < u;      /* unsigned: 0 */
  return (int)(r >> 28) * 100 + cmp1 * 10 + cmp2;  /* 15*... */
}
)"),
            [] {
              int s = -10;
              unsigned u = 3;
              unsigned r = s + u;
              int cmp1 = s < (int)u;
              int cmp2 = (unsigned)s < u;
              return static_cast<std::uint32_t>((int)(r >> 28) * 100 +
                                                cmp1 * 10 + cmp2);
            }());
}

TEST(MccStress, HexFloatLiteralsAreBitExact) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  double x = 0x1.8p1;    /* 3.0 */
  double y = 0x1p-2;     /* 0.25 */
  if (mc_dhi(x) != 0x40080000u) return 1;
  if (x * y != 0.75) return 2;
  return 42;
}
)"),
            42u);
}

TEST(MccStress, ConditionalExpressionNesting) {
  EXPECT_EQ(mc_exit(R"(
int main() {
  int x = 7;
  int r = x > 10 ? 1 : x > 5 ? (x > 6 ? 2 : 3) : 4;
  return r;
}
)"),
            2u);
}

TEST(MccStress, SideEffectsInConditions) {
  EXPECT_EQ(mc_exit(R"(
int calls;
int bump() { calls++; return calls; }
int main() {
  calls = 0;
  while (bump() < 5) { }
  if (calls != 5) return 1;
  for (calls = 0; bump() < 3;) { }
  return calls * 10;  /* 30 */
}
)"),
            30u);
}

TEST(MccStress, WorkloadStyleBitReader) {
  // The MVC decoder's bit-reader pattern distilled.
  EXPECT_EQ(mc_exit(R"(
unsigned char stream[4] = {0xA6, 0x70, 0x00, 0x00};
int pos;
int rbit() {
  int b = (stream[pos >> 3] >> (7 - (pos & 7))) & 1;
  pos = pos + 1;
  return b;
}
int rue() {
  int zeros = 0;
  while (rbit() == 0) zeros++;
  int v = 0;
  for (int i = 0; i < zeros; i++) v = (v << 1) | rbit();
  return (1 << zeros) - 1 + v;
}
int main() {
  pos = 0;
  /* 0xA6 0x40 encodes ue(0) ue(1) ue(2) ue(6): see bitio test */
  int a = rue();
  int b = rue();
  int c = rue();
  int d = rue();
  return a * 1000 + b * 100 + c * 10 + d;
}
)"),
            126u);
}

}  // namespace
}  // namespace nfp::mcc
