// Micro-C compiler: the -msoft-muldiv ABI. Programs using *, /, % and
// mc_umulhi must behave identically with hardware and software mul/div,
// and the soft build must emit no mul/div instructions at all.
#include <gtest/gtest.h>

#include "isa/names.h"
#include "mcc/compiler.h"
#include "sim/iss.h"

namespace nfp::mcc {
namespace {

struct AbiRun {
  std::uint32_t exit_code;
  std::uint64_t muldiv_ops;
  std::uint64_t instret;
};

AbiRun run_with(const std::string& src, MulDivAbi muldiv,
                FloatAbi fp = FloatAbi::kHard) {
  CompileOptions opts;
  opts.float_abi = fp;
  opts.muldiv_abi = muldiv;
  const auto program = Compiler(opts).compile({src});
  sim::Iss iss;
  iss.load(program);
  const auto result = iss.run(500'000'000ull);
  EXPECT_TRUE(result.halted);
  AbiRun out{result.exit_code, 0, result.instret};
  for (const auto op : {isa::Op::kUmul, isa::Op::kUmulcc, isa::Op::kSmul,
                        isa::Op::kSmulcc, isa::Op::kUdiv, isa::Op::kUdivcc,
                        isa::Op::kSdiv, isa::Op::kSdivcc}) {
    out.muldiv_ops += iss.counters().counts[static_cast<std::size_t>(op)];
  }
  return out;
}

void expect_same_result(const std::string& src) {
  const auto hard = run_with(src, MulDivAbi::kHard);
  const auto soft = run_with(src, MulDivAbi::kSoft);
  EXPECT_EQ(hard.exit_code, soft.exit_code);
  EXPECT_GT(hard.muldiv_ops, 0u);
  EXPECT_EQ(soft.muldiv_ops, 0u);
  EXPECT_GT(soft.instret, hard.instret);  // emulation costs instructions
}

TEST(MccMulDiv, Multiplication) {
  expect_same_result("int main() { return 123 * 45 % 251; }");
  expect_same_result(R"(
int main() {
  int acc = 1;
  for (int i = 1; i <= 10; i++) acc = acc * i % 10007;
  return acc;
}
)");
}

TEST(MccMulDiv, SignedDivision) {
  expect_same_result("int main() { return (-1000 / 7) + 200; }");
  expect_same_result("int main() { return (-1000 % 7) + 200; }");
  expect_same_result("int main() { return (1000 / -7) + 200; }");
}

TEST(MccMulDiv, UnsignedDivision) {
  expect_same_result(R"(
unsigned main() {
  unsigned a = 0xDEADBEEFu;
  return (a / 1000u) % 251u + (a % 13u);
}
)");
}

TEST(MccMulDiv, UmulhiIntrinsic) {
  expect_same_result(R"(
int main() {
  unsigned h = mc_umulhi(0x89ABCDEFu, 0x12345678u);
  return (int)(h % 251u);
}
)");
}

TEST(MccMulDiv, NonPowerOfTwoArrayScaling) {
  // int[3] rows have a 12-byte stride: indexing needs a multiply.
  expect_same_result(R"(
int m[5][3];
int main() {
  for (int r = 0; r < 5; r++)
    for (int c = 0; c < 3; c++)
      m[r][c] = r * 3 + c;
  int* a = &m[1][0];
  int* b = &m[4][0];
  return m[3][2] + (int)(b - a);  /* 11 + 9... pointer diff over rows */
}
)");
}

TEST(MccMulDiv, CombinedWithSoftFloat) {
  // The minimal CPU: no FPU, no MUL/DIV. Soft-float internally multiplies
  // and uses mc_umulhi, all of which must route through __mc_*.
  const char* src = R"(
int main() {
  double a = 3.25;
  double b = -1.5;
  double c = a * b + mc_sqrt(2.0) / b;
  return (int)(c * -100.0);  /* 4.875 + (-0.9428) = ... -> 582 */
}
)";
  const auto full = run_with(src, MulDivAbi::kHard, FloatAbi::kSoft);
  const auto minimal = run_with(src, MulDivAbi::kSoft, FloatAbi::kSoft);
  EXPECT_EQ(full.exit_code, minimal.exit_code);
  EXPECT_EQ(minimal.muldiv_ops, 0u);
  EXPECT_GT(minimal.instret, full.instret);
}

TEST(MccMulDiv, SoftRuntimeNotLinkedWhenUnused) {
  CompileOptions hard;
  CompileOptions soft;
  soft.muldiv_abi = MulDivAbi::kSoft;
  const std::string src = "int main() { return 6 * 7; }";
  const auto ph = Compiler(hard).compile({src});
  const auto ps = Compiler(soft).compile({src});
  EXPECT_GT(ps.size(), ph.size());  // runtime linked in the soft build
  EXPECT_TRUE(ps.find_symbol("F___mc_imul").has_value());
  EXPECT_FALSE(ph.find_symbol("F___mc_imul").has_value());
}

}  // namespace
}  // namespace nfp::mcc
