// Peephole optimiser: pattern-level unit tests plus semantic-preservation
// checks through the full compile-and-run pipeline.
#include "mcc/peephole.h"

#include <gtest/gtest.h>

#include "mcc/compiler.h"
#include "sim/iss.h"

namespace nfp::mcc {
namespace {

TEST(Peephole, StoreLoadSameRegisterDropsLoad) {
  PeepholeStats stats;
  const std::string out = peephole_optimize(
      "        st %l0, [%sp+24]\n"
      "        ld [%sp+24], %l0\n"
      "        add %l0, 1, %l0",
      &stats);
  EXPECT_EQ(stats.removed_loads, 1);
  EXPECT_EQ(out.find("ld [%sp+24]"), std::string::npos);
  EXPECT_NE(out.find("st %l0, [%sp+24]"), std::string::npos);
}

TEST(Peephole, StoreLoadDifferentRegisterBecomesMove) {
  PeepholeStats stats;
  const std::string out = peephole_optimize(
      "        st %g1, [%sp+32]\n"
      "        ld [%sp+32], %l3",
      &stats);
  EXPECT_EQ(stats.removed_loads, 1);
  EXPECT_NE(out.find("mov %g1, %l3"), std::string::npos);
  EXPECT_EQ(out.find("ld "), std::string::npos);
}

TEST(Peephole, LabelBlocksForwarding) {
  PeepholeStats stats;
  const std::string src =
      "        st %l0, [%sp+24]\n"
      ".L1:\n"
      "        ld [%sp+24], %l0";
  EXPECT_EQ(peephole_optimize(src, &stats), src);
  EXPECT_EQ(stats.removed_loads, 0);
}

TEST(Peephole, DifferentSlotUntouched) {
  PeepholeStats stats;
  const std::string src =
      "        st %l0, [%sp+24]\n"
      "        ld [%sp+28], %l0";
  EXPECT_EQ(peephole_optimize(src, &stats), src);
  EXPECT_EQ(stats.removed_loads, 0);
}

TEST(Peephole, FallthroughBranchRemoved) {
  PeepholeStats stats;
  const std::string out = peephole_optimize(
      "        ba .L7\n"
      "        nop\n"
      ".L7:\n"
      "        add %l0, 1, %l0",
      &stats);
  EXPECT_EQ(stats.removed_branches, 1);
  EXPECT_EQ(out.find("ba .L7"), std::string::npos);
  EXPECT_NE(out.find(".L7:"), std::string::npos);
}

TEST(Peephole, NonFallthroughBranchKept) {
  PeepholeStats stats;
  const std::string src =
      "        ba .L9\n"
      "        nop\n"
      ".L8:\n"
      "        add %l0, 1, %l0";
  EXPECT_EQ(peephole_optimize(src, &stats), src);
  EXPECT_EQ(stats.removed_branches, 0);
}

// Semantic preservation: a battery of programs must produce identical exit
// codes with and without the optimiser, while never getting larger.
class PeepholePrograms : public ::testing::TestWithParam<const char*> {};

TEST_P(PeepholePrograms, SameResultNeverSlower) {
  const std::string src = GetParam();
  CompileOptions plain;
  CompileOptions optimised;
  optimised.peephole = true;

  sim::Iss iss_plain;
  iss_plain.load(Compiler(plain).compile({src}));
  const auto run_plain = iss_plain.run(100'000'000);
  ASSERT_TRUE(run_plain.halted);

  sim::Iss iss_opt;
  iss_opt.load(Compiler(optimised).compile({src}));
  const auto run_opt = iss_opt.run(100'000'000);
  ASSERT_TRUE(run_opt.halted);

  EXPECT_EQ(run_plain.exit_code, run_opt.exit_code);
  EXPECT_LE(run_opt.instret, run_plain.instret);
}

INSTANTIATE_TEST_SUITE_P(
    Battery, PeepholePrograms,
    ::testing::Values(
        "int main() { int s = 0; for (int i = 0; i < 50; i++) s += i * 3; "
        "return s & 0xFF; }",
        R"(
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { return fib(15) & 0xFF; }
)",
        R"(
double acc;
int main() {
  acc = 0.0;
  for (int i = 0; i < 20; i++) acc += 0.5 * (double)i;
  return (int)acc;
}
)",
        R"(
unsigned char buf[32];
int main() {
  for (int i = 0; i < 32; i++) buf[i] = (unsigned char)(i ^ 0x5A);
  int x = 0;
  for (int i = 0; i < 32; i++) x += buf[i];
  return x & 0xFF;
}
)"));

TEST(Peephole, ReducesMemoryTraffic) {
  // The forwarding window should retire fewer loads on real code.
  const char* src = R"(
int grid[64];
int main() {
  int acc = 0;
  for (int i = 0; i < 64; i++) grid[i] = i;
  for (int i = 1; i < 63; i++) acc += grid[i - 1] + 2 * grid[i] + grid[i + 1];
  return acc & 0xFF;
}
)";
  CompileOptions plain;
  CompileOptions optimised;
  optimised.peephole = true;
  const std::string before = Compiler(plain).compile_to_asm({src});
  const std::string after = Compiler(optimised).compile_to_asm({src});
  EXPECT_LT(after.size(), before.size());
}

}  // namespace
}  // namespace nfp::mcc
