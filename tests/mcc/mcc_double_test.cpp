// Micro-C compiler: double-precision tests, run under BOTH float ABIs.
// The paper's key compilation property: -msoft-float changes instruction
// mixes, never results ("the output matches exactly").
#include <gtest/gtest.h>

#include "support/mc_run.h"

namespace nfp::mcc {
namespace {

using nfp::test::mc_exit;
using nfp::test::mc_run;

class MccDouble : public ::testing::TestWithParam<FloatAbi> {
 protected:
  std::uint32_t run(const std::string& src) { return mc_exit(src, GetParam()); }
};

TEST_P(MccDouble, BasicArithmetic) {
  EXPECT_EQ(run(R"(
int main() {
  double a = 1.5;
  double b = 2.25;
  double c = a + b * 2.0 - 1.0;   /* 5.0 */
  return (int)c;
}
)"),
            5u);
}

TEST_P(MccDouble, DivisionAndComparison) {
  EXPECT_EQ(run(R"(
int main() {
  double x = 10.0 / 4.0;          /* 2.5 */
  if (x > 2.4 && x < 2.6) return 1;
  return 0;
}
)"),
            1u);
}

TEST_P(MccDouble, IntDoubleConversions) {
  EXPECT_EQ(run(R"(
int main() {
  int n = 7;
  double d = n;                    /* implicit */
  d = d / 2.0;                     /* 3.5 */
  int back = (int)d;               /* 3, truncation */
  double neg = -7.0 / 2.0;         /* -3.5 */
  return back * 10 + ((int)neg + 4);  /* 30 + 1 */
}
)"),
            31u);
}

TEST_P(MccDouble, UnsignedToDouble) {
  EXPECT_EQ(run(R"(
int main() {
  unsigned big = 0xF0000000u;      /* 4026531840 */
  double d = (double)big;
  d = d / 4294967296.0;            /* 0.9375 */
  return (int)(d * 16.0);          /* 15 */
}
)"),
            15u);
}

TEST_P(MccDouble, SqrtIntrinsic) {
  EXPECT_EQ(run(R"(
int main() {
  double r = mc_sqrt(2.0);
  /* r^2 should be ~2 within 1 ulp; scale to check digits */
  int scaled = (int)(r * 1000000.0);
  return scaled == 1414213 ? 1 : 0;
}
)"),
            1u);
}

TEST_P(MccDouble, NegationAndAbs) {
  EXPECT_EQ(run(R"(
double dabs(double x) { return x < 0.0 ? -x : x; }
int main() {
  double a = -3.75;
  return (int)(dabs(a) * 4.0);    /* 15 */
}
)"),
            15u);
}

TEST_P(MccDouble, DoubleGlobalsAndArrays) {
  EXPECT_EQ(run(R"(
double weights[4] = {0.5, 1.5, 2.5, 3.5};
double bias = 2.0;
int main() {
  double sum = bias;
  for (int i = 0; i < 4; i++) sum += weights[i];
  return (int)sum;                 /* 10 */
}
)"),
            10u);
}

TEST_P(MccDouble, DoubleFunctionArgsAndReturn) {
  EXPECT_EQ(run(R"(
double mix(double a, double b, double t) { return a + (b - a) * t; }
int main() {
  double v = mix(2.0, 6.0, 0.25);  /* 3.0 */
  return (int)v;
}
)"),
            3u);
}

TEST_P(MccDouble, DoublePointers) {
  EXPECT_EQ(run(R"(
void scale(double* p, int n, double k) {
  for (int i = 0; i < n; i++) p[i] = p[i] * k;
}
double data[3] = {1.0, 2.0, 3.0};
int main() {
  scale(data, 3, 2.0);
  return (int)(data[0] + data[1] + data[2]);  /* 12 */
}
)"),
            12u);
}

TEST_P(MccDouble, CompoundAssignOnDoubles) {
  EXPECT_EQ(run(R"(
int main() {
  double acc = 1.0;
  acc += 2.5;
  acc *= 2.0;   /* 7 */
  acc -= 1.0;   /* 6 */
  acc /= 3.0;   /* 2 */
  return (int)acc;
}
)"),
            2u);
}

TEST_P(MccDouble, MixedIntDoubleExpressions) {
  EXPECT_EQ(run(R"(
int main() {
  int n = 3;
  double d = 2.5;
  double r = n * d + n / 2;     /* 7.5 + 1 = 8.5 */
  return (int)(r * 2.0);         /* 17 */
}
)"),
            17u);
}

TEST_P(MccDouble, BitsIntrinsics) {
  EXPECT_EQ(run(R"(
int main() {
  double one = mc_bits2d(0x3FF00000u, 0u);
  if (one != 1.0) return 1;
  if (mc_dhi(2.0) != 0x40000000u) return 2;
  if (mc_dlo(2.0) != 0u) return 3;
  return 42;
}
)"),
            42u);
}

TEST_P(MccDouble, DeepExpression) {
  EXPECT_EQ(run(R"(
int main() {
  double r = ((((1.0 + 2.0) * (3.0 + 4.0)) - ((5.0 - 2.0) * 2.0)) /
              ((2.0 + 1.0)));  /* (21 - 6) / 3 = 5 */
  return (int)r;
}
)"),
            5u);
}

TEST_P(MccDouble, LoopAccumulation) {
  EXPECT_EQ(run(R"(
int main() {
  double sum = 0.0;
  for (int i = 1; i <= 100; i++) sum += 0.25;
  return (int)sum;  /* 25 */
}
)"),
            25u);
}

INSTANTIATE_TEST_SUITE_P(BothAbis, MccDouble,
                         ::testing::Values(FloatAbi::kHard, FloatAbi::kSoft),
                         [](const auto& info) {
                           return info.param == FloatAbi::kHard ? "hard"
                                                                : "soft";
                         });

// The soft-float build must produce BIT-IDENTICAL results to the hard-float
// build (paper: identical outputs under -msoft-float).
TEST(MccDoubleEquivalence, HardAndSoftMatchBitExactly) {
  const char* src = R"(
double chaos(double x, int rounds) {
  double acc = x;
  for (int i = 0; i < rounds; i++) {
    acc = acc * 1.0625 + 0.1;
    acc = acc / 1.5 - 0.01;
    acc = acc + mc_sqrt(acc);
  }
  return acc;
}
int main() {
  double r = chaos(0.7, 40);
  int* out = (int*)0x40C00000;
  out[0] = (int)mc_dhi(r);
  out[1] = (int)mc_dlo(r);
  return 0;
}
)";
  std::uint32_t words[2][2];
  for (const auto abi : {FloatAbi::kHard, FloatAbi::kSoft}) {
    mcc::CompileOptions opts;
    opts.float_abi = abi;
    const auto program = mcc::Compiler(opts).compile({src});
    sim::Iss iss;
    iss.load(program);
    const auto result = iss.run(500'000'000);
    ASSERT_TRUE(result.halted);
    const int idx = abi == FloatAbi::kHard ? 0 : 1;
    words[idx][0] = iss.bus().read_u32(sim::kOutputBase);
    words[idx][1] = iss.bus().read_u32(sim::kOutputBase + 4);
  }
  EXPECT_EQ(words[0][0], words[1][0]);
  EXPECT_EQ(words[0][1], words[1][1]);
}

// Instruction-mix sanity: the soft build uses no FPU ops and far more
// integer work; the hard build uses FPU arithmetic.
TEST(MccDoubleEquivalence, AbisChangeInstructionMixNotResults) {
  const char* src = R"(
int main() {
  double acc = 0.0;
  for (int i = 0; i < 50; i++) acc += 1.25;
  return (int)acc;
}
)";
  std::uint64_t fpu_ops[2] = {0, 0};
  std::uint64_t total[2] = {0, 0};
  for (const auto abi : {FloatAbi::kHard, FloatAbi::kSoft}) {
    mcc::CompileOptions opts;
    opts.float_abi = abi;
    const auto program = mcc::Compiler(opts).compile({src});
    sim::Iss iss;
    iss.load(program);
    const auto result = iss.run();
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.exit_code, 62u);
    const int idx = abi == FloatAbi::kHard ? 0 : 1;
    total[idx] = result.instret;
    for (std::size_t op = 0; op < isa::kOpCount; ++op) {
      if (isa::is_fpu(static_cast<isa::Op>(op))) {
        fpu_ops[idx] += iss.counters().counts[op];
      }
    }
  }
  EXPECT_GT(fpu_ops[0], 0u);
  EXPECT_EQ(fpu_ops[1], 0u);
  EXPECT_GT(total[1], total[0]);  // soft-float does much more work
}

}  // namespace
}  // namespace nfp::mcc
