// Regression tests for the shared CLI flag parsing (tools/cli_common.h):
// every value flag must accept both "--flag V" and "--flag=V", an empty
// inline value ("--flag=") must be a usage error rather than an empty
// operand, and the --name/--no-name toggle pairs must only match their own
// exact spellings (--board must not swallow --board-jit). These are the
// parsers behind nfpfuzz's corpus-replay options (--corpus-dir, --seed,
// --snapshot) and nfpc's snapshot path (--save-state/--load-state).
#include "cli_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nfp::cli {
namespace {

// Builds a mutable argv from string literals; argv[0] is the tool name.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    storage.insert(storage.begin(), "tool");
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(CliCommon, FlagValueTwoTokenForm) {
  Argv a({"--seed", "42"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--seed", a.argc(), a.argv(), i, &v),
            FlagMatch::kMatched);
  EXPECT_STREQ(v, "42");
  EXPECT_EQ(i, 2);  // consumed the value token
}

TEST(CliCommon, FlagValueInlineForm) {
  Argv a({"--seed=42"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--seed", a.argc(), a.argv(), i, &v),
            FlagMatch::kMatched);
  EXPECT_STREQ(v, "42");
  EXPECT_EQ(i, 1);  // inline form consumes nothing extra
}

TEST(CliCommon, FlagValueNoMatchLeavesIndexAlone) {
  Argv a({"--runs", "10"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--seed", a.argc(), a.argv(), i, &v),
            FlagMatch::kNoMatch);
  EXPECT_EQ(i, 1);
  EXPECT_EQ(v, nullptr);
}

TEST(CliCommon, FlagValueMissingAtEndOfArgv) {
  Argv a({"--seed"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--seed", a.argc(), a.argv(), i, &v),
            FlagMatch::kMissingValue);
}

TEST(CliCommon, FlagValueEmptyInlineValueIsMissing) {
  Argv a({"--seed="});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--seed", a.argc(), a.argv(), i, &v),
            FlagMatch::kMissingValue);
}

TEST(CliCommon, FlagValuePrefixDoesNotMatchLongerFlag) {
  // "--save-state" must not match a lookup for "--save"; only an exact name
  // or "name=" prefix counts.
  Argv a({"--save-state", "f.nfps"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--save", a.argc(), a.argv(), i, &v),
            FlagMatch::kNoMatch);
  EXPECT_EQ(match_flag_value("--save-state", a.argc(), a.argv(), i, &v),
            FlagMatch::kMatched);
  EXPECT_STREQ(v, "f.nfps");
}

TEST(CliCommon, FlagValuePathsWithEquals) {
  // Only the first '=' splits; values containing '=' survive.
  Argv a({"--corpus-dir=/tmp/dir=odd"});
  int i = 1;
  const char* v = nullptr;
  EXPECT_EQ(match_flag_value("--corpus-dir", a.argc(), a.argv(), i, &v),
            FlagMatch::kMatched);
  EXPECT_STREQ(v, "/tmp/dir=odd");
}

TEST(CliCommon, BoolFlagPositiveAndNegative) {
  bool value = false;
  EXPECT_TRUE(bool_flag("--snapshot", "--snapshot", value));
  EXPECT_TRUE(value);
  EXPECT_TRUE(bool_flag("--no-snapshot", "--snapshot", value));
  EXPECT_FALSE(value);
}

TEST(CliCommon, BoolFlagExactSpellingOnly) {
  bool value = true;
  // --board must not swallow --board-jit (or its negation).
  EXPECT_FALSE(bool_flag("--board-jit", "--board", value));
  EXPECT_FALSE(bool_flag("--no-board-jit", "--board", value));
  EXPECT_FALSE(bool_flag("--boardx", "--board", value));
  EXPECT_FALSE(bool_flag("--board=1", "--board", value));
  EXPECT_TRUE(value);  // untouched on non-match
  EXPECT_TRUE(bool_flag("--no-board", "--board", value));
  EXPECT_FALSE(value);
}

TEST(CliCommon, ParseLoopBoundHexAndDecimalAddresses) {
  std::map<std::uint32_t, std::uint64_t> bounds;
  EXPECT_TRUE(parse_loop_bound("0x40000010=12", bounds));
  EXPECT_TRUE(parse_loop_bound("1073741856=7", bounds));  // 0x40000020
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds.at(0x40000010u), 12u);
  EXPECT_EQ(bounds.at(0x40000020u), 7u);
}

TEST(CliCommon, ParseLoopBoundOverwritesEarlierAnnotation) {
  std::map<std::uint32_t, std::uint64_t> bounds;
  EXPECT_TRUE(parse_loop_bound("0x40=3", bounds));
  EXPECT_TRUE(parse_loop_bound("0x40=9", bounds));
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds.at(0x40u), 9u);  // last annotation wins
}

TEST(CliCommon, ParseLoopBoundRejectsMalformedText) {
  std::map<std::uint32_t, std::uint64_t> bounds;
  EXPECT_FALSE(parse_loop_bound("40", bounds));       // no '='
  EXPECT_FALSE(parse_loop_bound("=5", bounds));       // empty address
  EXPECT_FALSE(parse_loop_bound("0x40=", bounds));    // empty value
  EXPECT_FALSE(parse_loop_bound("abc=3", bounds));    // non-numeric address
  EXPECT_FALSE(parse_loop_bound("0x40x=3", bounds));  // junk before '='
  EXPECT_FALSE(parse_loop_bound("0x40=3x", bounds));  // junk after value
  EXPECT_TRUE(bounds.empty());  // rejected operands leave the map untouched
}

TEST(CliCommon, ParseLoopBoundZeroNeedsAllowZero) {
  std::map<std::uint32_t, std::uint64_t> bounds;
  // A zero relative bound is meaningless...
  EXPECT_FALSE(parse_loop_bound("0x40=0", bounds));
  EXPECT_TRUE(bounds.empty());
  // ...but a zero absolute total pins a never-executed loop (--loop-total).
  EXPECT_TRUE(parse_loop_bound("0x40=0", bounds, /*allow_zero=*/true));
  EXPECT_EQ(bounds.at(0x40u), 0u);
}

TEST(CliCommon, DispatchNamesRoundTrip) {
  for (const sim::Dispatch d :
       {sim::Dispatch::kStep, sim::Dispatch::kBlock,
        sim::Dispatch::kBlockUnchained, sim::Dispatch::kJit}) {
    EXPECT_EQ(parse_dispatch(dispatch_name(d), "test"), d);
  }
}

}  // namespace
}  // namespace nfp::cli
