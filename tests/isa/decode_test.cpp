#include "isa/decode.h"

#include <gtest/gtest.h>

#include "isa/encode.h"

namespace nfp::isa {
namespace {

TEST(Decode, AddRegReg) {
  // add %g1, %g2, %g3
  const DecodedInsn d = decode(enc_alu(Op::kAdd, 3, 1, 2));
  EXPECT_EQ(d.op, Op::kAdd);
  EXPECT_EQ(d.rd, 3);
  EXPECT_EQ(d.rs1, 1);
  EXPECT_EQ(d.rs2, 2);
  EXPECT_FALSE(d.has_imm);
}

TEST(Decode, AddImmNegative) {
  const DecodedInsn d = decode(enc_alu_imm(Op::kAdd, 3, 1, -42));
  EXPECT_EQ(d.op, Op::kAdd);
  EXPECT_TRUE(d.has_imm);
  EXPECT_EQ(d.imm, -42);
}

TEST(Decode, SethiAndNop) {
  const DecodedInsn s = decode(enc_sethi(1, 0x12345400u));
  EXPECT_EQ(s.op, Op::kSethi);
  EXPECT_EQ(s.rd, 1);
  EXPECT_EQ(static_cast<std::uint32_t>(s.imm), 0x12345400u);

  const DecodedInsn n = decode(enc_nop());
  EXPECT_EQ(n.op, Op::kNop);
}

TEST(Decode, BranchDisplacement) {
  const DecodedInsn fwd = decode(enc_bicc(Cond::kNe, false, 64));
  EXPECT_EQ(fwd.op, Op::kBicc);
  EXPECT_EQ(fwd.cond, static_cast<std::uint8_t>(Cond::kNe));
  EXPECT_EQ(fwd.imm, 64);
  EXPECT_FALSE(fwd.annul);

  const DecodedInsn bwd = decode(enc_bicc(Cond::kA, true, -128));
  EXPECT_EQ(bwd.imm, -128);
  EXPECT_TRUE(bwd.annul);
}

TEST(Decode, Call) {
  const DecodedInsn d = decode(enc_call(-4096));
  EXPECT_EQ(d.op, Op::kCall);
  EXPECT_EQ(d.imm, -4096);
}

TEST(Decode, MemoryForms) {
  const DecodedInsn ld = decode(enc_mem_imm(Op::kLd, 5, 14, 8));
  EXPECT_EQ(ld.op, Op::kLd);
  EXPECT_EQ(ld.rd, 5);
  EXPECT_EQ(ld.rs1, 14);
  EXPECT_EQ(ld.imm, 8);

  const DecodedInsn st = decode(enc_mem(Op::kStb, 7, 2, 3));
  EXPECT_EQ(st.op, Op::kStb);
  EXPECT_EQ(st.rs2, 3);
}

TEST(Decode, FpuOps) {
  const DecodedInsn d = decode(enc_fp(Op::kFaddd, 4, 2, 6));
  EXPECT_EQ(d.op, Op::kFaddd);
  EXPECT_EQ(d.rd, 4);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.rs2, 6);

  const DecodedInsn c = decode(enc_fp(Op::kFcmpd, 0, 0, 2));
  EXPECT_EQ(c.op, Op::kFcmpd);
}

TEST(Decode, TrapAlways) {
  const DecodedInsn d = decode(enc_ta(0));
  EXPECT_EQ(d.op, Op::kTicc);
  EXPECT_EQ(d.cond, 8);
  EXPECT_TRUE(d.has_imm);
  EXPECT_EQ(d.imm, 0);
}

TEST(Decode, InvalidWordsRejected) {
  EXPECT_EQ(decode(0x00000000u).op, Op::kInvalid);   // UNIMP
  EXPECT_EQ(decode(0xFFFFFFFFu).op, Op::kInvalid);
}

// Round-trip: every encodable op survives encode->decode.
class AluRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(AluRoundTrip, RegisterForm) {
  const Op op = GetParam();
  const DecodedInsn d = decode(enc_alu(op, 9, 10, 11));
  EXPECT_EQ(d.op, op);
  EXPECT_EQ(d.rd, 9);
  EXPECT_EQ(d.rs1, 10);
  EXPECT_EQ(d.rs2, 11);
}

TEST_P(AluRoundTrip, ImmediateForm) {
  const Op op = GetParam();
  const DecodedInsn d = decode(enc_alu_imm(op, 9, 10, 4095));
  EXPECT_EQ(d.op, op);
  EXPECT_TRUE(d.has_imm);
  EXPECT_EQ(d.imm, 4095);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlu, AluRoundTrip,
    ::testing::Values(Op::kAdd, Op::kAddcc, Op::kAddx, Op::kAddxcc, Op::kSub,
                      Op::kSubcc, Op::kSubx, Op::kSubxcc, Op::kAnd, Op::kAndcc,
                      Op::kAndn, Op::kAndncc, Op::kOr, Op::kOrcc, Op::kOrn,
                      Op::kOrncc, Op::kXor, Op::kXorcc, Op::kXnor, Op::kXnorcc,
                      Op::kSll, Op::kSrl, Op::kSra, Op::kUmul, Op::kUmulcc,
                      Op::kSmul, Op::kSmulcc, Op::kUdiv, Op::kUdivcc,
                      Op::kSdiv, Op::kSdivcc, Op::kJmpl, Op::kSave,
                      Op::kRestore));

class MemRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(MemRoundTrip, Forms) {
  const Op op = GetParam();
  const DecodedInsn reg = decode(enc_mem(op, 8, 9, 10));
  EXPECT_EQ(reg.op, op);
  const DecodedInsn imm = decode(enc_mem_imm(op, 8, 9, -4096));
  EXPECT_EQ(imm.op, op);
  EXPECT_EQ(imm.imm, -4096);
}

INSTANTIATE_TEST_SUITE_P(
    AllMem, MemRoundTrip,
    ::testing::Values(Op::kLd, Op::kLdub, Op::kLdsb, Op::kLduh, Op::kLdsh,
                      Op::kLdd, Op::kSt, Op::kStb, Op::kSth, Op::kStd,
                      Op::kLdf, Op::kLddf, Op::kStf, Op::kStdf));

class FpRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(FpRoundTrip, Forms) {
  const Op op = GetParam();
  const DecodedInsn d = decode(enc_fp(op, 2, 4, 6));
  EXPECT_EQ(d.op, op);
  EXPECT_EQ(d.rd, 2);
  EXPECT_EQ(d.rs2, 6);
}

INSTANTIATE_TEST_SUITE_P(
    AllFp, FpRoundTrip,
    ::testing::Values(Op::kFadds, Op::kFaddd, Op::kFsubs, Op::kFsubd,
                      Op::kFmuls, Op::kFmuld, Op::kFdivs, Op::kFdivd,
                      Op::kFsqrts, Op::kFsqrtd, Op::kFmovs, Op::kFnegs,
                      Op::kFabss, Op::kFitos, Op::kFitod, Op::kFstoi,
                      Op::kFdtoi, Op::kFstod, Op::kFdtos, Op::kFcmps,
                      Op::kFcmpd));

TEST(Categories, PaperTableIMapping) {
  EXPECT_EQ(default_category(Op::kAdd), Category::kIntArith);
  EXPECT_EQ(default_category(Op::kUmul), Category::kIntArith);
  EXPECT_EQ(default_category(Op::kBicc), Category::kJump);
  EXPECT_EQ(default_category(Op::kCall), Category::kJump);
  EXPECT_EQ(default_category(Op::kLd), Category::kMemLoad);
  EXPECT_EQ(default_category(Op::kLddf), Category::kMemLoad);
  EXPECT_EQ(default_category(Op::kSt), Category::kMemStore);
  EXPECT_EQ(default_category(Op::kStdf), Category::kMemStore);
  EXPECT_EQ(default_category(Op::kNop), Category::kNop);
  EXPECT_EQ(default_category(Op::kSethi), Category::kOther);
  EXPECT_EQ(default_category(Op::kFaddd), Category::kFpuArith);
  EXPECT_EQ(default_category(Op::kFmuld), Category::kFpuArith);
  EXPECT_EQ(default_category(Op::kFdivd), Category::kFpuDiv);
  EXPECT_EQ(default_category(Op::kFsqrtd), Category::kFpuSqrt);
}

TEST(Categories, EveryOpHasACategory) {
  for (std::size_t i = 1; i < kOpCount; ++i) {
    const auto cat = default_category(static_cast<Op>(i));
    EXPECT_LT(static_cast<std::size_t>(cat), kCategoryCount);
  }
}

// ---- Edge cases pinned alongside the nfplint decoder-consistency sweep ----

TEST(DecodeEdge, ReservedOp2ValuesRejected) {
  // Format-2 op2 values 0, 1, 3, 5, 7 are reserved (unimplemented) in V8;
  // they must be rejected for every rd/imm22 fill.
  for (const std::uint32_t op2 : {0u, 1u, 3u, 5u, 7u}) {
    for (const std::uint32_t rd : {0u, 1u, 31u}) {
      for (const std::uint32_t imm22 : {0u, 1u, 0x3FFFFFu}) {
        const std::uint32_t word = (rd << 25) | (op2 << 22) | imm22;
        EXPECT_EQ(decode(word).op, Op::kInvalid) << std::hex << word;
      }
    }
  }
}

TEST(DecodeEdge, FpopOpfHolesRejected) {
  const auto fpop1 = [](std::uint32_t opf) {
    return (2u << 30) | (1u << 25) | (0x34u << 19) | (2u << 14) | (opf << 5) |
           3u;
  };
  const auto fpop2 = [](std::uint32_t opf) {
    return (2u << 30) | (0u << 25) | (0x35u << 19) | (2u << 14) | (opf << 5) |
           3u;
  };
  // Sanity: the populated codes decode.
  EXPECT_EQ(decode(fpop1(0x41)).op, Op::kFadds);
  EXPECT_EQ(decode(fpop1(0x4E)).op, Op::kFdivd);
  EXPECT_EQ(decode(fpop2(0x51)).op, Op::kFcmps);
  // Holes between and around populated codes (including the quad-precision
  // slots 0x43/0x47/0x4B/0x4F, which this implementation does not provide).
  for (const std::uint32_t opf :
       {0x00u, 0x02u, 0x0Du, 0x2Bu, 0x43u, 0x47u, 0x4Bu, 0x4Fu, 0xC5u, 0xCAu,
        0xD3u, 0x1FFu}) {
    EXPECT_EQ(decode(fpop1(opf)).op, Op::kInvalid) << std::hex << opf;
  }
  // FPop2 only implements fcmps/fcmpd; fcmpes/fcmped (0x55/0x56) and the
  // rest of the space are holes.
  for (const std::uint32_t opf : {0x00u, 0x50u, 0x53u, 0x55u, 0x56u, 0x1FFu}) {
    EXPECT_EQ(decode(fpop2(opf)).op, Op::kInvalid) << std::hex << opf;
  }
}

TEST(DecodeEdge, SethiNopBoundary) {
  // Only the exact encoding `sethi 0, %g0` is the canonical NOP; a nonzero
  // destination or a nonzero imm22 is an architected sethi (Table I counts
  // them in different categories).
  EXPECT_EQ(decode(enc_sethi(0, 0)).op, Op::kNop);
  EXPECT_EQ(decode(enc_sethi(1, 0)).op, Op::kSethi);
  EXPECT_EQ(decode(enc_sethi(0, 0x400)).op, Op::kSethi);  // imm22 == 1
  EXPECT_EQ(default_category(decode(enc_sethi(0, 0)).op), Category::kNop);
  EXPECT_EQ(default_category(decode(enc_sethi(0, 0x400)).op),
            Category::kOther);
}

}  // namespace
}  // namespace nfp::isa
