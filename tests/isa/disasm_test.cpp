#include "isa/disasm.h"

#include <gtest/gtest.h>

#include "isa/decode.h"
#include "isa/encode.h"

namespace nfp::isa {
namespace {

TEST(Disasm, BasicForms) {
  EXPECT_EQ(disassemble_word(enc_alu(Op::kAdd, 3, 1, 2), 0), "add %g1, %g2, %g3");
  EXPECT_EQ(disassemble_word(enc_alu_imm(Op::kSub, 8, 8, 1), 0),
            "sub %o0, 1, %o0");
  EXPECT_EQ(disassemble_word(enc_nop(), 0), "nop");
  EXPECT_EQ(disassemble_word(enc_mem_imm(Op::kLd, 16, 14, 8), 0),
            "ld [%o6+8], %l0");
  EXPECT_EQ(disassemble_word(enc_mem_imm(Op::kSt, 16, 14, -4), 0),
            "st %l0, [%o6-4]");
  EXPECT_EQ(disassemble_word(enc_fp(Op::kFaddd, 4, 0, 2), 0),
            "faddd %f0, %f2, %f4");
  EXPECT_EQ(disassemble_word(enc_fp(Op::kFsqrtd, 4, 0, 2), 0),
            "fsqrtd %f2, %f4");
  EXPECT_EQ(disassemble_word(enc_fp(Op::kFcmpd, 0, 0, 2), 0),
            "fcmpd %f0, %f2");
}

TEST(Disasm, BranchTargets) {
  EXPECT_EQ(disassemble_word(enc_bicc(Cond::kNe, false, 16), 0x40000000),
            "bne 0x40000010");
  EXPECT_EQ(disassemble_word(enc_bicc(Cond::kA, true, -8), 0x40000100),
            "ba,a 0x400000f8");
  EXPECT_EQ(disassemble_word(enc_call(0x100), 0x40000000), "call 0x40000100");
}

TEST(Disasm, InvalidWord) {
  EXPECT_EQ(disassemble_word(0, 0), "<invalid 0x00000000>");
}

// Every encodable instruction must disassemble without crashing and never
// report <invalid>.
TEST(Disasm, TotalOverEncodableOps) {
  for (std::size_t i = 1; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    if (op == Op::kNop || op == Op::kBicc || op == Op::kFbfcc ||
        op == Op::kCall || op == Op::kSethi || op == Op::kTicc) {
      continue;  // exercised above
    }
    std::uint32_t word;
    if (is_load(op) || is_store(op)) {
      word = enc_mem_imm(op, 2, 1, 4);
    } else if (is_fpu(op)) {
      word = enc_fp(op, 2, 4, 6);
    } else {
      word = enc_alu(op, 2, 1, 3);
    }
    const std::string text = disassemble_word(word, 0x1000);
    EXPECT_EQ(text.find("<invalid"), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace nfp::isa
