#include "isa/encode.h"

#include <gtest/gtest.h>

namespace nfp::isa {
namespace {

// Spot checks against independently hand-assembled SPARC V8 words.
TEST(Encode, KnownWords) {
  // add %g1, %g2, %g3  -> 10 00011 000000 00001 0 00000000 00010
  EXPECT_EQ(enc_alu(Op::kAdd, 3, 1, 2), 0x86004002u);
  // sub %o0, 1, %o0 (imm) -> rd=8 op3=000100 rs1=8 i=1 simm=1
  EXPECT_EQ(enc_alu_imm(Op::kSub, 8, 8, 1), 0x90222001u);
  // nop == sethi 0, %g0
  EXPECT_EQ(enc_nop(), 0x01000000u);
  // ld [%sp], %l0: op=11 rd=16 op3=000000 rs1=14 i=1 simm=0
  EXPECT_EQ(enc_mem_imm(Op::kLd, 16, 14, 0), 0xE003A000u);
  // ba +8 -> 00 0 1000 010 disp22=2
  EXPECT_EQ(enc_bicc(Cond::kA, false, 8), 0x10800002u);
  // call +16 -> 01 disp30=4
  EXPECT_EQ(enc_call(16), 0x40000004u);
  // faddd %f0, %f2, %f4 -> op=10 rd=4 op3=110100 rs1=0 opf=0x42 rs2=2
  EXPECT_EQ(enc_fp(Op::kFaddd, 4, 0, 2), 0x89A00842u);
}

TEST(Encode, Simm13Boundaries) {
  EXPECT_EQ((enc_alu_imm(Op::kAdd, 1, 1, 4095) & 0x1FFF), 4095u);
  EXPECT_EQ((enc_alu_imm(Op::kAdd, 1, 1, -4096) & 0x1FFF), 0x1000u);
  EXPECT_EQ((enc_alu_imm(Op::kAdd, 1, 1, -1) & 0x1FFF), 0x1FFFu);
}

TEST(Encode, BranchDisplacementBoundaries) {
  // Maximum forward / backward 22-bit word displacements.
  const std::int32_t max_fwd = ((1 << 21) - 1) * 4;
  const std::int32_t max_bwd = -(1 << 21) * 4;
  EXPECT_EQ((enc_bicc(Cond::kA, false, max_fwd) & 0x3FFFFF),
            static_cast<std::uint32_t>((1 << 21) - 1));
  EXPECT_EQ((enc_bicc(Cond::kA, false, max_bwd) & 0x3FFFFF),
            static_cast<std::uint32_t>(1 << 21));
}

}  // namespace
}  // namespace nfp::isa
