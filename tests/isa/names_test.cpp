#include "isa/names.h"

#include <gtest/gtest.h>

namespace nfp::isa {
namespace {

TEST(Names, MnemonicRoundTrip) {
  for (std::size_t i = 1; i < kOpCount; ++i) {
    const Op op = static_cast<Op>(i);
    if (op == Op::kBicc || op == Op::kFbfcc || op == Op::kNop) continue;
    const std::string_view name = mnemonic(op);
    ASSERT_NE(name, "<invalid>") << i;
    // rd/wr/ta share mnemonics with their canonical ops.
    const Op back = op_from_mnemonic(name);
    EXPECT_EQ(back, op) << name;
  }
  EXPECT_EQ(op_from_mnemonic("bogus"), Op::kInvalid);
}

TEST(Names, RegisterNamesAndParsing) {
  EXPECT_EQ(reg_name(0), "%g0");
  EXPECT_EQ(reg_name(14), "%o6");
  EXPECT_EQ(reg_name(16), "%l0");
  EXPECT_EQ(reg_name(31), "%i7");
  for (int r = 0; r < 32; ++r) {
    const auto parsed = parse_reg(reg_name(static_cast<std::uint8_t>(r)));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, r);
  }
  EXPECT_EQ(*parse_reg("%sp"), kRegSp);
  EXPECT_EQ(*parse_reg("%fp"), kRegFp);
  EXPECT_FALSE(parse_reg("%x3").has_value());
  EXPECT_FALSE(parse_reg("%g8").has_value());
  EXPECT_FALSE(parse_reg("g3").has_value());
}

TEST(Names, FloatRegisterParsing) {
  for (int f = 0; f < 32; ++f) {
    const auto parsed = parse_freg("%f" + std::to_string(f));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(parse_freg("%f32").has_value());
  EXPECT_FALSE(parse_freg("%f-1").has_value());
  EXPECT_FALSE(parse_freg("%f").has_value());
}

TEST(Names, ConditionCodes) {
  EXPECT_EQ(cond_name(Cond::kNe), "ne");
  EXPECT_EQ(cond_name(Cond::kA), "a");
  EXPECT_EQ(*cond_from_name("ne"), Cond::kNe);
  EXPECT_EQ(*cond_from_name("gu"), Cond::kGu);
  // gas aliases
  EXPECT_EQ(*cond_from_name("z"), Cond::kE);
  EXPECT_EQ(*cond_from_name("geu"), Cond::kCc);
  EXPECT_FALSE(cond_from_name("xyz").has_value());
  EXPECT_EQ(*fcond_from_name("ule"), FCond::kUle);
  EXPECT_FALSE(fcond_from_name("zz").has_value());
}

}  // namespace
}  // namespace nfp::isa
