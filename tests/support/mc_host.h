// Host-side shims for Micro-C intrinsics (shared implementation).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#include "workloads/mc_shims.h"
