// Test helper: compile a Micro-C source and run it on the counting ISS.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "mcc/compiler.h"
#include "sim/iss.h"

namespace nfp::test {

struct McRun {
  std::uint32_t exit_code = 0;
  std::string uart;
  std::uint64_t instret = 0;
};

inline McRun mc_run(const std::string& source,
                    mcc::FloatAbi abi = mcc::FloatAbi::kHard,
                    std::uint64_t max_insns = 200'000'000) {
  mcc::CompileOptions opts;
  opts.float_abi = abi;
  const auto program = mcc::Compiler(opts).compile({source});
  sim::Iss iss;
  iss.load(program);
  const auto result = iss.run(max_insns);
  EXPECT_TRUE(result.halted) << "program did not halt";
  McRun run;
  run.exit_code = result.exit_code;
  run.uart = iss.bus().uart_output();
  run.instret = result.instret;
  return run;
}

inline std::uint32_t mc_exit(const std::string& source,
                             mcc::FloatAbi abi = mcc::FloatAbi::kHard) {
  return mc_run(source, abi).exit_code;
}

}  // namespace nfp::test
