// Generator invariants: determinism (a seed is a complete program
// description — required for corpus reproducibility), subset closure (any
// chunk subset must still assemble and terminate, which is what makes
// chunk-deletion shrinking sound), and the instruction counter the shrink
// gate reports.
#include "fuzz/generator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::fuzz {
namespace {

GenConfig config_for(std::uint64_t seed, const std::string& mix_name) {
  GenConfig cfg;
  cfg.seed = seed;
  cfg.chunks = 16;
  cfg.mix_name = mix_name;
  cfg.mix = *mix_from_name(mix_name);
  return cfg;
}

TEST(FuzzGenerator, SameSeedSameProgram) {
  for (const auto& mix : mix_names()) {
    const std::string a = render(generate(config_for(42, mix)));
    const std::string b = render(generate(config_for(42, mix)));
    EXPECT_EQ(a, b) << "mix " << mix;
  }
}

TEST(FuzzGenerator, DifferentSeedsDiffer) {
  const std::string a = render(generate(config_for(1, "default")));
  const std::string b = render(generate(config_for(2, "default")));
  EXPECT_NE(a, b);
}

TEST(FuzzGenerator, EveryMixAssemblesAndTerminates) {
  for (const auto& mix : mix_names()) {
    const std::string source = render(generate(config_for(7, mix)));
    const auto program = asmkit::assemble(source, sim::kTextBase);
    sim::Iss iss;
    iss.load(program);
    const auto r = iss.run(1'000'000, sim::Dispatch::kStep);
    EXPECT_TRUE(r.halted) << "mix " << mix << " did not halt:\n" << source;
  }
}

TEST(FuzzGenerator, ArbitrarySubsetsStayValid) {
  const GenProgram program = generate(config_for(11, "default"));
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<bool> keep(program.chunks.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = rng.chance(50);
    const std::string source = render_subset(program, keep);
    const auto image = asmkit::assemble(source, sim::kTextBase);
    sim::Iss iss;
    iss.load(image);
    EXPECT_TRUE(iss.run(1'000'000, sim::Dispatch::kStep).halted)
        << "subset trial " << trial << ":\n" << source;
  }
  // The empty subset is the shrinker's smallest candidate.
  const std::string empty =
      render_subset(program, std::vector<bool>(program.chunks.size(), false));
  sim::Iss iss;
  iss.load(asmkit::assemble(empty, sim::kTextBase));
  EXPECT_TRUE(iss.run(1'000, sim::Dispatch::kStep).halted);
}

TEST(FuzzGenerator, CountInstructionsHandlesLabelsCommentsAndSet) {
  const std::string source =
      "! comment only\n"
      "  .text\n"
      "_start:\n"
      "  set 123456, %g1   ! expands to sethi+or\n"
      "lbl: add %g1, 1, %g1\n"
      "  ta 0\n"
      "  nop\n"
      "  .data\n"
      "  .word 5\n";
  EXPECT_EQ(count_instructions(source), 5u);  // set(2) + add + ta + nop
}

TEST(FuzzShrink, CleanProgramReportsNoDivergence) {
  const GenProgram program = generate(config_for(5, "cti"));
  DiffConfig diff;
  diff.checkpoint_seed = 5;
  DiffArena arena;
  const ShrinkResult result = shrink(program, diff, arena);
  EXPECT_FALSE(result.diverged);
  EXPECT_EQ(result.chunks_kept, program.chunks.size());
  EXPECT_EQ(result.oracle_runs, 1u);
}

}  // namespace
}  // namespace nfp::fuzz
