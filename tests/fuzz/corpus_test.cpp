// Replays every committed corpus file through the differential oracle.
// Corpus entries are minimized reproducers of bugs that were caught during
// fuzzing (against intentionally injected or real defects); replaying them
// on every test run turns each one into a permanent regression test.
#include "fuzz/corpus.h"

#include <gtest/gtest.h>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "sim/digest.h"

#ifndef NFP_FUZZ_CORPUS_DIR
#error "NFP_FUZZ_CORPUS_DIR must point at the committed corpus"
#endif

namespace nfp::fuzz {
namespace {

TEST(FuzzCorpus, CommittedReproducersReplayClean) {
  const auto corpus = load_corpus_dir(NFP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(corpus.empty()) << "no corpus at " << NFP_FUZZ_CORPUS_DIR;
  DiffArena arena;
  for (const auto& entry : corpus) {
    DiffConfig diff;
    diff.checkpoint_seed = sim::fnv1a64(entry.path.data(), entry.path.size());
    const DiffReport report =
        run_differential_source(entry.source, diff, arena);
    EXPECT_FALSE(report.diverged) << entry.path << ": " << report.detail;
    EXPECT_TRUE(report.step_halted) << entry.path;
    EXPECT_GT(report.step_instret, 0u) << entry.path;
  }
}

TEST(FuzzCorpus, ReplayExercisesSnapshotArm) {
  // The save→restore→continue leg is on by default, so the replay above
  // already runs it; pin the default so a regressed flag can't silently
  // drop the arm, then replay the corpus with ONLY the snapshot leg on top
  // of the plain dispatch legs — a divergence here is unambiguously a
  // serialization bug, not a dispatch bug.
  EXPECT_TRUE(DiffConfig{}.check_snapshot);
  const auto corpus = load_corpus_dir(NFP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(corpus.empty()) << "no corpus at " << NFP_FUZZ_CORPUS_DIR;
  DiffArena arena;
  for (const auto& entry : corpus) {
    DiffConfig diff;
    diff.check_board = false;
    diff.check_jit = false;
    diff.check_board_jit = false;
    diff.check_snapshot = true;
    diff.checkpoint_seed =
        sim::fnv1a64(entry.path.data(), entry.path.size()) ^ 0x5a5au;
    const DiffReport report =
        run_differential_source(entry.source, diff, arena);
    EXPECT_FALSE(report.diverged) << entry.path << ": " << report.detail;
  }
}

TEST(FuzzCorpus, MissingDirectoryYieldsEmptyCorpus) {
  EXPECT_TRUE(load_corpus_dir("/nonexistent/fuzz/corpus").empty());
}

TEST(FuzzCorpus, WriteEntryRoundTrips) {
  const std::string dir = ::testing::TempDir() + "nfpfuzz-corpus";
  DiffReport report;
  report.diverged = true;
  report.mode = "block";
  report.detail = "cpu-digest mismatch";
  report.step_instret = 42;
  report.step_halted = true;
  const std::string source = "  .text\n_start:\n  ta 0\n  nop\n";
  const std::string path =
      write_corpus_entry(dir, 123, "selfmod", report, source);
  const auto corpus = load_corpus_dir(dir);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus[0].path, path);
  EXPECT_NE(corpus[0].source.find("! seed: 123"), std::string::npos);
  EXPECT_NE(corpus[0].source.find(source), std::string::npos);
  // The header is comments only: the file must still assemble and run.
  DiffArena arena;
  const DiffReport replay =
      run_differential_source(corpus[0].source, DiffConfig{}, arena);
  EXPECT_FALSE(replay.diverged);
  EXPECT_TRUE(replay.step_halted);
}

}  // namespace
}  // namespace nfp::fuzz
