// The fuzz_smoke ctest tier: ~200 constrained-random programs, every chunk
// mix, differentially executed across kStep / kBlockUnchained / kBlock with
// randomized mid-run budget stops. Fixed seeds keep the tier deterministic;
// broader exploration belongs to the nfpfuzz CLI with fresh seeds.
#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"

namespace nfp::fuzz {
namespace {

// 7 mixes x 29 seeds = 203 programs; runs in well under the 10 s budget.
constexpr std::uint64_t kSeedsPerMix = 29;
constexpr std::uint64_t kBaseSeed = 1;

TEST(FuzzSmoke, AllMixesAgreeAcrossDispatchModes) {
  DiffArena arena;
  std::uint64_t programs = 0;
  std::uint64_t insns = 0;
  for (const auto& mix_name : mix_names()) {
    for (std::uint64_t s = 0; s < kSeedsPerMix; ++s) {
      GenConfig gen;
      gen.seed = kBaseSeed + s;
      gen.chunks = 16;
      gen.mix_name = mix_name;
      gen.mix = *mix_from_name(mix_name);

      DiffConfig diff;
      diff.checkpoints = 4;
      diff.checkpoint_seed = gen.seed * 977 + programs;

      const DiffReport report =
          run_differential_source(render(generate(gen)), diff, arena);
      ASSERT_FALSE(report.diverged)
          << "mix " << mix_name << " seed " << gen.seed << ": "
          << report.detail;
      EXPECT_TRUE(report.step_halted)
          << "mix " << mix_name << " seed " << gen.seed;
      ++programs;
      insns += report.step_instret;
    }
  }
  EXPECT_EQ(programs, mix_names().size() * kSeedsPerMix);
  // Sanity: the tier must be executing real work, not empty programs.
  EXPECT_GT(insns, 10'000u);
}

}  // namespace
}  // namespace nfp::fuzz
