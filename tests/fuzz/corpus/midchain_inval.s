! nfpfuzz reproducer (directed)
! seed: n/a (hand-written regression program)
! mix: selfmod
! divergence: none on current simulator; guards mid-chain invalidation.
!   The loop's first block stores an xor-toggled instruction word over the
!   entry of its chained successor ("patch") and then branches into the
!   rewritten block: the head -> patch chain link installed on iteration 1
!   must be severed by every later invalidation or a stale trace executes.
! step instret: 8 iterations alternating the patched immediate (5 / 9)
  .text
  .global _start
_start:
  mov 0, %o0
  set patch, %g5
  set word2, %g6
  ld [%g6], %g6
  ld [%g5], %o1
  xor %o1, %g6, %g6
  mov 8, %g7
head:
  ld [%g5], %o1
  xor %o1, %g6, %o1
  st %o1, [%g5]
  ba patch
  nop
patch:
  add %o0, 5, %o0
  subcc %g7, 1, %g7
  bne head
  nop
  ta 0
  nop
word2:
  add %o0, 9, %o0
