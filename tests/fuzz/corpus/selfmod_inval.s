! nfpfuzz reproducer
! seed: 7
! mix: selfmod
! divergence: dispatch block-unchained vs step, checkpoint 1 (budget 53): cpu-digest step=2533734157348013595 got=3811777466100127743; 
! step instret: 65 (halted)
! nfpfuzz seed=7 mix=selfmod chunks=24
  .text
  .global _start
_start:
  mov 724, %o0
  mov 2219, %o3
  set Wt23, %g6
  ld [%g6], %g6
  set Wp23, %g5
  ld [%g5], %o3
  xor %o3, %g6, %g6
  mov 6, %g7
Lsm23:
  ld [%g5], %o3
  xor %o3, %g6, %o3
  st %o3, [%g5]
  ba Wp23
  nop
Wp23:
  add %o0, 257, %o0
  subcc %g7, 1, %g7
  bne Lsm23
  nop
  ta 0
  nop
Wt23:
  add %o0, 480, %o0
