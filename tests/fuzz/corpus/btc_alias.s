! nfpfuzz reproducer (directed)
! seed: n/a (hand-written regression program)
! mix: jmpl
! divergence: none on current simulator; guards BTC aliasing. Two
!   register-indirect return sites 512 bytes apart collide in the
!   128-entry direct-mapped branch-target cache ((pc >> 2) & 127); a stale
!   entry surviving eviction would resume after the wrong call site.
! step instret: loop of 40 iterations, two indirect calls each
  .text
  .global _start
_start:
  clr %l0
  clr %o0
  set f1, %g1
  set f2, %g2
loop:
  jmpl %g1, %o7
  nop
  ba mid
  nop
  .space 496
mid:
  jmpl %g2, %o7
  nop
  add %l0, 1, %l0
  cmp %l0, 40
  bne loop
  nop
  ta 0
  nop
f1:
  retl
  add %o0, 1, %o0
f2:
  retl
  add %o0, 2, %o0
