// Directed regression programs for the two hardest dispatch-cache hazards
// the fuzzer targets: branch-target-cache aliasing (two register-indirect
// arrival sites colliding in the 128-entry direct-mapped BTC) and mid-chain
// invalidation (a store rewriting the second block of an installed chain
// link while the first block is the one executing). Both must be
// architecturally invisible: every dispatch mode agrees with the stepping
// reference at every budget granularity.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "asmkit/assembler.h"
#include "fuzz/oracle.h"
#include "sim/block_cache.h"
#include "sim/digest.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::fuzz {
namespace {

// Two call sites 512 bytes apart: their return arrival pcs (site + 8) map
// to the same BTC entry ((pc >> 2) & 127), so the shared slot is evicted on
// every iteration. A stale hit would resume after the wrong call site.
const char* kBtcAliasSource = R"(! btc aliasing: return sites collide mod 512
  .text
  .global _start
_start:
  clr %l0
  clr %o0
  set f1, %g1
  set f2, %g2
loop:
  jmpl %g1, %o7
  nop
  ba mid
  nop
  .space 496
mid:
  jmpl %g2, %o7
  nop
  add %l0, 1, %l0
  cmp %l0, 40
  bne loop
  nop
  ta 0
  nop
f1:
  retl
  add %o0, 1, %o0
f2:
  retl
  add %o0, 2, %o0
)";

// A counted loop whose first block stores an xor-toggled word over the
// entry instruction of its chained successor ("patch"), then branches into
// the freshly rewritten block. The chain link head -> patch installs on the
// first iteration and must be severed by every subsequent invalidation.
const char* kMidChainSource = R"(! mid-chain invalidation: store over the
! second block of an installed chain link
  .text
  .global _start
_start:
  mov 0, %o0
  set patch, %g5
  set word2, %g6
  ld [%g6], %g6
  ld [%g5], %o1
  xor %o1, %g6, %g6
  mov 8, %g7
head:
  ld [%g5], %o1
  xor %o1, %g6, %o1
  st %o1, [%g5]
  ba patch
  nop
patch:
  add %o0, 5, %o0
  subcc %g7, 1, %g7
  bne head
  nop
  ta 0
  nop
word2:
  add %o0, 9, %o0
)";

TEST(FuzzDirected, BtcAliasingNeverReturnsStaleSuccessor) {
  DiffConfig diff;
  diff.checkpoint_seed = 0xB7C;
  DiffArena arena;
  const DiffReport report =
      run_differential_source(kBtcAliasSource, diff, arena);
  EXPECT_FALSE(report.diverged) << report.detail;
  EXPECT_TRUE(report.step_halted);

  // The program must actually exercise the aliasing slot: chained dispatch
  // sees a BTC miss whenever the colliding return evicted the entry.
  sim::Iss iss;
  iss.load(asmkit::assemble(kBtcAliasSource, sim::kTextBase));
  const auto r = iss.run(1'000'000, sim::Dispatch::kBlock);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(iss.cpu().r[8], 40u * 3u);  // %o0: f1 adds 1, f2 adds 2, x40
  ASSERT_NE(iss.platform().block_cache(), nullptr);
  const auto& stats = iss.platform().block_cache()->stats();
  EXPECT_GE(stats.btc_misses, 40u);
}

TEST(FuzzDirected, MidChainInvalidationMatchesStepAtEveryBudget) {
  const auto program = asmkit::assemble(kMidChainSource, sim::kTextBase);

  sim::Iss probe;
  probe.load(program);
  const auto full = probe.run(1'000'000, sim::Dispatch::kStep);
  ASSERT_TRUE(full.halted);
  const std::uint64_t total = full.instret;
  // 8 iterations alternating the patched immediate between 5 and 9.
  EXPECT_EQ(probe.cpu().r[8], 4u * 5u + 4u * 9u);

  sim::Iss ref;
  sim::Iss dut;
  for (std::uint64_t budget = 1; budget <= total; ++budget) {
    ref.load(program);
    ref.run(budget, sim::Dispatch::kStep);
    for (const auto mode :
         {sim::Dispatch::kBlockUnchained, sim::Dispatch::kBlock}) {
      dut.load(program);
      dut.run(budget, mode);
      ASSERT_EQ(dut.cpu().instret, ref.cpu().instret) << "budget " << budget;
      ASSERT_EQ(dut.cpu().pc, ref.cpu().pc) << "budget " << budget;
      ASSERT_EQ(sim::arch_digest(dut.cpu(), dut.bus()),
                sim::arch_digest(ref.cpu(), ref.bus()))
          << "budget " << budget;
      ASSERT_EQ(dut.counters().counts, ref.counters().counts)
          << "retire vector diverged at budget " << budget;
    }
  }
}

TEST(FuzzDirected, MidChainLoopInstallsAndSeversLinks) {
  // Guards the premise of the budget sweep: links must install every
  // iteration and invalidation must sever them again (each store kills the
  // just-installed edge before it can be followed, so chain_hits stays 0 —
  // the re-install/sever churn is exactly the hazard under test).
  sim::Iss iss;
  iss.load(asmkit::assemble(kMidChainSource, sim::kTextBase));
  ASSERT_TRUE(iss.run(1'000'000, sim::Dispatch::kBlock).halted);
  ASSERT_NE(iss.platform().block_cache(), nullptr);
  const auto& stats = iss.platform().block_cache()->stats();
  EXPECT_GT(stats.links_installed, 0u);
  EXPECT_GT(stats.links_severed, 0u);
  EXPECT_GT(stats.flushes, 0u);
}

}  // namespace
}  // namespace nfp::fuzz
