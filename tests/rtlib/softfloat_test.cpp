// Differential test of the Micro-C soft-float runtime against host hardware
// IEEE-754 arithmetic. The runtime source is #included directly (the same
// bytes mcc compiles for the target), with intrinsics shimmed.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

#include "support/mc_host.h"

namespace sf {
#include "rtlib/mc/softfloat.c"
}  // namespace sf

namespace {

std::uint64_t bits_of(double d) { return std::bit_cast<std::uint64_t>(d); }
double from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

// NaNs compare equal as long as both are NaN (we canonicalise to one qNaN).
void expect_same(double got, double want, const std::string& what) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << what;
    return;
  }
  EXPECT_EQ(bits_of(got), bits_of(want))
      << what << ": got " << got << " want " << want;
}

const double kInterestingValues[] = {
    0.0, -0.0, 1.0, -1.0, 2.0, 0.5, 1.5, -2.25, 3.141592653589793,
    1e-300, -1e-300, 1e300, -1e300, 255.0, 1e-8, 123456789.0,
    0.1, 0.2, 0.3, 1.0 / 3.0,
    std::numeric_limits<double>::min(),          // smallest normal
    std::numeric_limits<double>::denorm_min(),   // smallest subnormal
    std::numeric_limits<double>::max(),
    std::numeric_limits<double>::infinity(),
    -std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
    4.9406564584124654e-324, 2.2250738585072009e-308,  // subnormal boundary
    9007199254740992.0,   // 2^53
    9007199254740993.0,   // 2^53 + 1 (not representable; rounds)
};

TEST(Softfloat, AddDirectedCases) {
  for (const double a : kInterestingValues) {
    for (const double b : kInterestingValues) {
      expect_same(sf::__sf_dadd(a, b), a + b,
                  "add " + std::to_string(a) + " + " + std::to_string(b));
    }
  }
}

TEST(Softfloat, SubDirectedCases) {
  for (const double a : kInterestingValues) {
    for (const double b : kInterestingValues) {
      expect_same(sf::__sf_dsub(a, b), a - b, "sub");
    }
  }
}

TEST(Softfloat, MulDirectedCases) {
  for (const double a : kInterestingValues) {
    for (const double b : kInterestingValues) {
      expect_same(sf::__sf_dmul(a, b), a * b, "mul");
    }
  }
}

TEST(Softfloat, DivDirectedCases) {
  for (const double a : kInterestingValues) {
    for (const double b : kInterestingValues) {
      expect_same(sf::__sf_ddiv(a, b), a / b, "div");
    }
  }
}

TEST(Softfloat, SqrtDirectedCases) {
  for (const double a : kInterestingValues) {
    expect_same(sf::__sf_dsqrt(a), std::sqrt(a), "sqrt");
  }
}

TEST(Softfloat, CancellationNearMisses) {
  // Catastrophic cancellation and guard-bit paths.
  const double pairs[][2] = {
      {1.0, -0.9999999999999999}, {1.0, -0.9999999999999998},
      {1e16, -1e16 + 2}, {1.0000000000000002, -1.0},
      {3.0, -2.9999999999999996},
  };
  for (const auto& p : pairs) {
    expect_same(sf::__sf_dadd(p[0], p[1]), p[0] + p[1], "cancellation");
  }
}

// Random sweeps over several operand regimes.
class SoftfloatRandom : public ::testing::TestWithParam<std::uint64_t> {};

double random_double(std::mt19937_64& rng, int regime) {
  switch (regime) {
    case 0: {  // uniform bit patterns (includes NaNs, infs, subnormals)
      return from_bits(rng());
    }
    case 1: {  // "image processing"-like magnitudes
      std::uniform_real_distribution<double> d(-1000.0, 1000.0);
      return d(rng);
    }
    case 2: {  // wide exponent range, finite
      const std::uint64_t mant = rng() & 0x000FFFFFFFFFFFFFull;
      const std::uint64_t exp = 1 + rng() % 0x7FD;
      const std::uint64_t sign = rng() & 0x8000000000000000ull;
      return from_bits(sign | (exp << 52) | mant);
    }
    default: {  // near-1 magnitudes (rounding boundaries)
      std::uniform_real_distribution<double> d(0.5, 2.0);
      return d(rng);
    }
  }
}

TEST_P(SoftfloatRandom, AllOpsMatchHardware) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const int regime = i % 4;
    const double a = random_double(rng, regime);
    const double b = random_double(rng, regime);
    expect_same(sf::__sf_dadd(a, b), a + b, "add");
    expect_same(sf::__sf_dsub(a, b), a - b, "sub");
    expect_same(sf::__sf_dmul(a, b), a * b, "mul");
    expect_same(sf::__sf_ddiv(a, b), a / b, "div");
    if (!std::signbit(a)) {
      expect_same(sf::__sf_dsqrt(a), std::sqrt(a), "sqrt");
    }
    if (i > 3000) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftfloatRandom,
                         ::testing::Values(1u, 2u, 3u, 20150407u));

TEST(Softfloat, Conversions) {
  const int ints[] = {0, 1, -1, 42, -42, 2147483647, -2147483647 - 1,
                      1 << 30, -(1 << 30), 999999999};
  for (const int v : ints) {
    expect_same(sf::__sf_i2d(v), static_cast<double>(v), "i2d");
  }
  const unsigned uints[] = {0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
                            0xDEADBEEFu};
  for (const unsigned v : uints) {
    expect_same(sf::__sf_u2d(v), static_cast<double>(v), "u2d");
  }
  // d2i truncates toward zero; saturates out of range.
  EXPECT_EQ(sf::__sf_d2i(3.99), 3);
  EXPECT_EQ(sf::__sf_d2i(-3.99), -3);
  EXPECT_EQ(sf::__sf_d2i(0.0), 0);
  EXPECT_EQ(sf::__sf_d2i(-0.5), 0);
  EXPECT_EQ(sf::__sf_d2i(2147483646.5), 2147483646);
  EXPECT_EQ(sf::__sf_d2i(1e10), 2147483647);
  EXPECT_EQ(sf::__sf_d2i(-1e10), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(sf::__sf_d2i(-2147483648.0),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(sf::__sf_d2u(3.99), 3u);
  EXPECT_EQ(sf::__sf_d2u(4294967295.0), 4294967295u);
  EXPECT_EQ(sf::__sf_d2u(1e12), 4294967295u);
  EXPECT_EQ(sf::__sf_d2u(-1.0), 0u);
}

TEST(Softfloat, RandomConversionSweep) {
  std::mt19937_64 rng(77);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int32_t>(rng());
    expect_same(sf::__sf_i2d(v), static_cast<double>(v), "i2d rand");
    expect_same(sf::__sf_u2d(static_cast<std::uint32_t>(v)),
                static_cast<double>(static_cast<std::uint32_t>(v)),
                "u2d rand");
    std::uniform_real_distribution<double> d(-2.2e9, 2.2e9);
    const double x = d(rng);
    const std::int32_t want =
        x >= 2147483648.0
            ? std::numeric_limits<std::int32_t>::max()
            : (x < -2147483648.0 ? std::numeric_limits<std::int32_t>::min()
                                 : static_cast<std::int32_t>(x));
    EXPECT_EQ(sf::__sf_d2i(x), want) << x;
  }
}

TEST(Softfloat, Comparison) {
  EXPECT_EQ(sf::__sf_dcmp(1.0, 2.0), -1);
  EXPECT_EQ(sf::__sf_dcmp(2.0, 1.0), 1);
  EXPECT_EQ(sf::__sf_dcmp(1.0, 1.0), 0);
  EXPECT_EQ(sf::__sf_dcmp(0.0, -0.0), 0);
  EXPECT_EQ(sf::__sf_dcmp(-1.0, 1.0), -1);
  EXPECT_EQ(sf::__sf_dcmp(-1.0, -2.0), 1);
  EXPECT_EQ(sf::__sf_dcmp(-0.0, 1.0), -1);
  EXPECT_EQ(sf::__sf_dcmp(1e-320, 0.0), 1);  // subnormal vs zero
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(sf::__sf_dcmp(nan, 1.0), 2);
  EXPECT_EQ(sf::__sf_dcmp(1.0, nan), 2);

  std::mt19937_64 rng(99);
  for (int i = 0; i < 20000; ++i) {
    std::uniform_real_distribution<double> d(-1e6, 1e6);
    const double a = d(rng);
    const double b = i % 7 == 0 ? a : d(rng);
    const int want = a < b ? -1 : (a > b ? 1 : 0);
    EXPECT_EQ(sf::__sf_dcmp(a, b), want);
  }
}

TEST(Softfloat, NegIsSignFlip) {
  expect_same(sf::__sf_dneg(1.5), -1.5, "neg");
  expect_same(sf::__sf_dneg(-0.0), 0.0, "neg");
  EXPECT_EQ(bits_of(sf::__sf_dneg(0.0)), bits_of(-0.0));
}

// NaN propagation through add/mul/div: whenever host IEEE-754 arithmetic
// yields NaN — propagated operand NaNs (with payloads, in either operand
// position) or freshly generated ones (inf - inf, 0 * inf, 0/0, inf/inf,
// sqrt of a negative) — the soft-float runtime must also yield NaN, and the
// NaN it returns must be quiet (exponent all ones, quiet bit set), never a
// signalling pattern leaking to downstream consumers.
TEST(Softfloat, NanPropagation) {
  const auto expect_quiet_nan = [](double got, const std::string& what) {
    ASSERT_TRUE(std::isnan(got)) << what;
    const std::uint64_t b = bits_of(got);
    EXPECT_EQ((b >> 52) & 0x7FF, 0x7FFull) << what;
    EXPECT_NE(b & 0x0008000000000000ull, 0u) << what << ": signalling NaN";
  };

  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = std::numeric_limits<double>::signaling_NaN();
  const double payload_nan = from_bits(0x7FF8DEADBEEF1234ull);
  const double neg_nan = from_bits(0xFFF8000000000001ull);
  const double inf = std::numeric_limits<double>::infinity();

  const double nans[] = {qnan, snan, payload_nan, neg_nan};
  const double others[] = {0.0, -0.0, 1.0, -2.5, 1e300, 1e-320, inf, -inf,
                           qnan};
  for (const double n : nans) {
    for (const double x : others) {
      expect_quiet_nan(sf::__sf_dadd(n, x), "nan + x");
      expect_quiet_nan(sf::__sf_dadd(x, n), "x + nan");
      expect_quiet_nan(sf::__sf_dsub(n, x), "nan - x");
      expect_quiet_nan(sf::__sf_dmul(n, x), "nan * x");
      expect_quiet_nan(sf::__sf_dmul(x, n), "x * nan");
      expect_quiet_nan(sf::__sf_ddiv(n, x), "nan / x");
      expect_quiet_nan(sf::__sf_ddiv(x, n), "x / nan");
    }
    expect_quiet_nan(sf::__sf_dsqrt(n), "sqrt(nan)");
    EXPECT_EQ(sf::__sf_dcmp(n, 1.0), 2) << "nan unordered";
  }

  // Invalid operations must generate NaN exactly where hardware does.
  expect_quiet_nan(sf::__sf_dadd(inf, -inf), "inf + -inf");
  expect_quiet_nan(sf::__sf_dsub(inf, inf), "inf - inf");
  expect_quiet_nan(sf::__sf_dmul(0.0, inf), "0 * inf");
  expect_quiet_nan(sf::__sf_dmul(-inf, 0.0), "-inf * 0");
  expect_quiet_nan(sf::__sf_ddiv(0.0, 0.0), "0 / 0");
  expect_quiet_nan(sf::__sf_ddiv(inf, -inf), "inf / -inf");
  expect_quiet_nan(sf::__sf_dsqrt(-1.0), "sqrt(-1)");
  expect_quiet_nan(sf::__sf_dsqrt(-inf), "sqrt(-inf)");
  // ...and must NOT generate NaN where hardware does not.
  expect_same(sf::__sf_dadd(inf, inf), inf, "inf + inf");
  expect_same(sf::__sf_ddiv(1.0, 0.0), inf, "1 / 0");
  expect_same(sf::__sf_ddiv(-1.0, 0.0), -inf, "-1 / 0");
  expect_same(sf::__sf_dsqrt(-0.0), -0.0, "sqrt(-0)");
}

// Round-to-nearest-even ties at the subnormal boundary, differential
// against host hardware (which rounds RNE with gradual underflow). Halving
// a subnormal with an odd mantissa is an exact tie: the guard bit is 1 and
// the sticky bits are 0, so the result must round to the even neighbour.
TEST(Softfloat, RoundToNearestEvenTiesAtSubnormalBoundary) {
  const double dmin = std::numeric_limits<double>::denorm_min();  // 2^-1074
  const double nmin = std::numeric_limits<double>::min();         // 2^-1022

  // mantissa 3 / 2 -> tie between 1 and 2 -> even 2; 5 / 2 -> even 2.
  struct Case {
    std::uint64_t in;
    std::uint64_t want;
  };
  const Case halving[] = {
      {0x0000000000000001ull, 0x0000000000000000ull},  // 1*dmin/2 -> 0 (even)
      {0x0000000000000003ull, 0x0000000000000002ull},  // tie -> 2 (even)
      {0x0000000000000005ull, 0x0000000000000002ull},  // tie -> 2 (even)
      {0x0000000000000007ull, 0x0000000000000004ull},  // tie -> 4 (even)
      {0x000000000000000Full, 0x0000000000000008ull},
      {0x0010000000000001ull, 0x0008000000000000ull},  // just above nmin
  };
  for (const Case& c : halving) {
    const double x = from_bits(c.in);
    expect_same(sf::__sf_dmul(x, 0.5), x * 0.5, "halve mul");
    expect_same(sf::__sf_ddiv(x, 2.0), x / 2.0, "halve div");
    EXPECT_EQ(bits_of(sf::__sf_dmul(x, 0.5)), c.want)
        << "RNE tie for mantissa " << c.in;
  }

  // Sub-boundary sums and differences: results straddle the normal /
  // subnormal line where the rounding position shifts.
  const double operands[] = {
      dmin, 2 * dmin, 3 * dmin, nmin, nmin - dmin, nmin + dmin,
      nmin / 2, nmin / 2 + dmin, from_bits(0x000FFFFFFFFFFFFFull),
      from_bits(0x0000000000000001ull),
  };
  for (const double a : operands) {
    for (const double b : operands) {
      expect_same(sf::__sf_dadd(a, b), a + b, "subnormal add");
      expect_same(sf::__sf_dsub(a, b), a - b, "subnormal sub");
      expect_same(sf::__sf_dadd(a, -b), a + -b, "subnormal add neg");
    }
  }

  // Products that underflow into the subnormal range with a tie: scale an
  // odd-mantissa value by powers of two down across the boundary.
  std::mt19937_64 rng(20260807);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t mant = (rng() & 0x000FFFFFFFFFFFFFull) | 1ull;
    const double x = from_bits((0x001ull << 52) | mant);  // small normal
    const int k = 1 + static_cast<int>(rng() % 60);
    const double scale = std::ldexp(1.0, -k);
    expect_same(sf::__sf_dmul(x, scale), x * scale, "underflow mul");
    expect_same(sf::__sf_ddiv(x, std::ldexp(1.0, k)), x / std::ldexp(1.0, k),
                "underflow div");
  }
}

// Property: a+b == b+a, a*b == b*a bit-exactly (IEEE commutativity).
TEST(Softfloat, CommutativityProperty) {
  std::mt19937_64 rng(123);
  for (int i = 0; i < 5000; ++i) {
    const double a = random_double(rng, i % 4);
    const double b = random_double(rng, (i + 1) % 4);
    const double ab = sf::__sf_dadd(a, b);
    const double ba = sf::__sf_dadd(b, a);
    if (!std::isnan(ab) || !std::isnan(ba)) {
      EXPECT_EQ(bits_of(ab), bits_of(ba));
    }
    const double m1 = sf::__sf_dmul(a, b);
    const double m2 = sf::__sf_dmul(b, a);
    if (!std::isnan(m1) || !std::isnan(m2)) {
      EXPECT_EQ(bits_of(m1), bits_of(m2));
    }
  }
}

}  // namespace
