// Differential test of the Micro-C software mul/div runtime against host
// integer arithmetic (same dual-compilation scheme as the soft-float test).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "support/mc_host.h"

namespace smd {
#include "rtlib/mc/softmuldiv.c"
}  // namespace smd

namespace {

TEST(SoftMulDiv, MultiplyDirected) {
  EXPECT_EQ(smd::__mc_umul(0u, 0u), 0u);
  EXPECT_EQ(smd::__mc_umul(1u, 0xFFFFFFFFu), 0xFFFFFFFFu);
  EXPECT_EQ(smd::__mc_umul(0x10000u, 0x10000u), 0u);  // wraps
  EXPECT_EQ(smd::__mc_imul(-3, 7), -21);
  EXPECT_EQ(smd::__mc_imul(-3, -7), 21);
  EXPECT_EQ(smd::__mc_imul(123456, 789), 123456 * 789);
}

TEST(SoftMulDiv, UmulhiDirected) {
  EXPECT_EQ(smd::__mc_umulhi(0u, 0xFFFFFFFFu), 0u);
  EXPECT_EQ(smd::__mc_umulhi(0xFFFFFFFFu, 0xFFFFFFFFu), 0xFFFFFFFEu);
  EXPECT_EQ(smd::__mc_umulhi(0x10000u, 0x10000u), 1u);
  EXPECT_EQ(smd::__mc_umulhi(0x80000000u, 2u), 1u);
}

TEST(SoftMulDiv, DivideDirected) {
  EXPECT_EQ(smd::__mc_udiv(100u, 7u), 14u);
  EXPECT_EQ(smd::__mc_urem(100u, 7u), 2u);
  EXPECT_EQ(smd::__mc_udiv(0xFFFFFFFFu, 1u), 0xFFFFFFFFu);
  EXPECT_EQ(smd::__mc_udiv(5u, 10u), 0u);
  // C truncation semantics for signed operands.
  EXPECT_EQ(smd::__mc_sdiv(-7, 2), -3);
  EXPECT_EQ(smd::__mc_srem(-7, 2), -1);
  EXPECT_EQ(smd::__mc_sdiv(7, -2), -3);
  EXPECT_EQ(smd::__mc_srem(7, -2), 1);
  EXPECT_EQ(smd::__mc_sdiv(-7, -2), 3);
  EXPECT_EQ(smd::__mc_srem(-7, -2), -1);
}

TEST(SoftMulDiv, RandomSweepMatchesHardware) {
  std::mt19937_64 rng(2015);
  for (int i = 0; i < 50000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng());
    auto b = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(smd::__mc_umul(a, b), a * b);
    EXPECT_EQ(smd::__mc_imul(static_cast<int>(a), static_cast<int>(b)),
              static_cast<int>(a * b));
    EXPECT_EQ(smd::__mc_umulhi(a, b),
              static_cast<std::uint32_t>(
                  (static_cast<std::uint64_t>(a) * b) >> 32));
    if (b == 0) b = 1;
    EXPECT_EQ(smd::__mc_udiv(a, b), a / b);
    EXPECT_EQ(smd::__mc_urem(a, b), a % b);
    const auto sa = static_cast<std::int32_t>(a);
    auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) sb = 1;
    if (!(sa == std::numeric_limits<std::int32_t>::min() && sb == -1)) {
      EXPECT_EQ(smd::__mc_sdiv(sa, sb), sa / sb);
      EXPECT_EQ(smd::__mc_srem(sa, sb), sa % sb);
    }
  }
}

}  // namespace
