// End-to-end differential tests: the Micro-C workloads compiled by mcc and
// executed on the simulated SPARC must reproduce the host-native (golden)
// results bit-exactly, in both float ABIs.
#include "workloads/kernels.h"

#include <gtest/gtest.h>

#include "codecs/sequence_gen.h"
#include "isa/names.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::workloads {
namespace {

sim::RunResult run_job(sim::Iss& iss, const model::KernelJob& job) {
  iss.load(job.program);
  for (const auto& [addr, bytes] : job.inputs) {
    iss.bus().write_block(addr, bytes.data(), bytes.size());
  }
  return iss.run(2'000'000'000ull);
}

TEST(FseOnSim, MatchesHostGoldenBitExactly) {
  FseKernelParams params;
  params.iterations = 24;
  params.count = 2;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_fse_jobs(abi, params);
    for (int k = 0; k < params.count; ++k) {
      sim::Iss iss;
      const auto result = run_job(iss, jobs[k]);
      ASSERT_TRUE(result.halted) << jobs[k].name;
      ASSERT_EQ(result.exit_code, 0u) << jobs[k].name;

      const auto data = fse_kernel_data(k);
      const auto golden =
          fse_golden(data.signal, data.mask, params.iterations, params.rho);
      for (int i = 0; i < 256; ++i) {
        const double got = iss.bus().read_f64(sim::kOutputBase + 8 * i);
        EXPECT_EQ(got, golden[i])
            << jobs[k].name << " sample " << i;
        if (got != golden[i]) return;  // avoid error spam
      }
    }
  }
}

TEST(FseOnSim, HardAndSoftProduceIdenticalOutput) {
  FseKernelParams params;
  params.iterations = 16;
  params.count = 1;
  std::vector<std::vector<std::uint8_t>> outputs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_fse_jobs(abi, params);
    sim::Iss iss;
    const auto result = run_job(iss, jobs[0]);
    ASSERT_TRUE(result.halted);
    ASSERT_EQ(result.exit_code, 0u);
    outputs.push_back(iss.bus().read_block(sim::kOutputBase, 256 * 8));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(FseOnSim, SoftFloatUsesNoFpuInstructions) {
  FseKernelParams params;
  params.iterations = 8;
  params.count = 1;
  const auto jobs = make_fse_jobs(mcc::FloatAbi::kSoft, params);
  sim::Iss iss;
  const auto result = run_job(iss, jobs[0]);
  ASSERT_TRUE(result.halted);
  for (std::size_t op = 0; op < isa::kOpCount; ++op) {
    if (isa::is_fpu(static_cast<isa::Op>(op))) {
      EXPECT_EQ(iss.counters().counts[op], 0u)
          << isa::mnemonic(static_cast<isa::Op>(op));
    }
  }
}

TEST(MvcOnSim, MatchesGoldenDecoderBitExactly) {
  MvcKernelParams params;
  params.frames = 3;
  params.qps = {32};
  const auto streams = mvc_streams(params);
  const std::size_t frame_bytes =
      static_cast<std::size_t>(params.width) * params.height;

  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_mvc_jobs(abi, params);
    ASSERT_EQ(jobs.size(), streams.size());
    // One stream per config suffices for the per-ABI differential check.
    for (const std::size_t idx : {0u, 3u, 6u, 9u}) {
      sim::Iss iss;
      const auto result = run_job(iss, jobs[idx]);
      ASSERT_TRUE(result.halted) << jobs[idx].name;
      ASSERT_EQ(result.exit_code, 0u) << jobs[idx].name;

      const auto golden = codec::golden_decode(streams[idx]);
      ASSERT_EQ(golden.status, 0);
      for (int f = 0; f < params.frames; ++f) {
        const auto got = iss.bus().read_block(
            sim::kOutputBase + f * frame_bytes, frame_bytes);
        EXPECT_EQ(got, std::vector<std::uint8_t>(golden.frames[f]))
            << jobs[idx].name << " frame " << f;
      }
      // Stats doubles after the frames (8-aligned).
      const std::uint32_t stats_at =
          sim::kOutputBase +
          ((static_cast<std::uint32_t>(frame_bytes) * params.frames + 7u) &
           ~7u);
      EXPECT_EQ(iss.bus().read_f64(stats_at), golden.rms_activity)
          << jobs[idx].name;
    }
  }
}

TEST(MvcOnSim, FloatVariantUsesFpuFixedDoesNot) {
  MvcKernelParams params;
  params.frames = 2;
  params.qps = {32};
  std::uint64_t fpu_counts[2] = {0, 0};
  std::uint64_t totals[2] = {0, 0};
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_mvc_jobs(abi, params);
    sim::Iss iss;
    const auto result = run_job(iss, jobs[0]);
    ASSERT_TRUE(result.halted);
    const int idx = abi == mcc::FloatAbi::kHard ? 0 : 1;
    totals[idx] = result.instret;
    for (std::size_t op = 0; op < isa::kOpCount; ++op) {
      if (isa::is_fpu(static_cast<isa::Op>(op))) {
        fpu_counts[idx] += iss.counters().counts[op];
      }
    }
  }
  EXPECT_GT(fpu_counts[0], 100u);
  EXPECT_EQ(fpu_counts[1], 0u);
  EXPECT_GT(totals[1], totals[0]);
}

TEST(FseOnSim, MinimalCpuConfigurationStillBitExact) {
  // Soft-float AND soft-muldiv: every double op and every multiply/divide
  // is emulated, yet results must stay bit-identical.
  FseKernelParams params;
  params.iterations = 8;
  params.count = 1;
  const auto jobs = make_fse_jobs(mcc::FloatAbi::kSoft, params,
                                  mcc::MulDivAbi::kSoft);
  sim::Iss iss;
  const auto result = run_job(iss, jobs[0]);
  ASSERT_TRUE(result.halted);
  ASSERT_EQ(result.exit_code, 0u);
  // Not a single FPU or MUL/DIV instruction retired.
  for (const auto op : {isa::Op::kUmul, isa::Op::kSmul, isa::Op::kUdiv,
                        isa::Op::kSdiv, isa::Op::kFaddd, isa::Op::kFmuld}) {
    EXPECT_EQ(iss.counters().counts[static_cast<std::size_t>(op)], 0u);
  }
  const auto data = fse_kernel_data(0);
  const auto golden =
      fse_golden(data.signal, data.mask, params.iterations, params.rho);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(iss.bus().read_f64(sim::kOutputBase + 8 * i), golden[i])
        << "sample " << i;
  }
}

TEST(SobelOnSim, MatchesHostGoldenExactly) {
  SobelKernelParams params;
  params.count = 2;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_sobel_jobs(abi, params);
    for (int k = 0; k < params.count; ++k) {
      sim::Iss iss;
      const auto result = run_job(iss, jobs[k]);
      ASSERT_TRUE(result.halted) << jobs[k].name;
      ASSERT_EQ(result.exit_code, 0u) << jobs[k].name;

      const auto image = sobel_kernel_image(k, params);
      const auto golden = sobel_golden(image, params.width, params.height);
      const std::size_t pixels = image.size();
      EXPECT_EQ(iss.bus().read_block(sim::kOutputBase, pixels),
                golden.edges)
          << jobs[k].name;
      const std::uint32_t hist_at =
          sim::kOutputBase + ((static_cast<std::uint32_t>(pixels) + 3u) & ~3u);
      for (int bin = 0; bin < 64; ++bin) {
        EXPECT_EQ(static_cast<int>(iss.bus().read_u32(hist_at + 4 * bin)),
                  golden.histogram[bin])
            << "bin " << bin;
      }
    }
  }
}

TEST(SobelOnSim, PureIntegerWorkloadIsAbiInvariant) {
  SobelKernelParams params;
  params.count = 1;
  std::uint64_t instret[2];
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    const auto jobs = make_sobel_jobs(abi, params);
    sim::Iss iss;
    const auto result = run_job(iss, jobs[0]);
    ASSERT_TRUE(result.halted);
    instret[abi == mcc::FloatAbi::kHard ? 0 : 1] = result.instret;
    for (std::size_t op = 0; op < isa::kOpCount; ++op) {
      if (isa::is_fpu(static_cast<isa::Op>(op))) {
        EXPECT_EQ(iss.counters().counts[op], 0u);
      }
    }
  }
  // No floating point anywhere: the executed stream is ABI-independent.
  EXPECT_EQ(instret[0], instret[1]);
}

TEST(Kernels, PaperTestSetSizes) {
  // 4 configs x 3 QPs x 3 sequences = 36; 24 FSE kernels.
  EXPECT_EQ(make_mvc_jobs(mcc::FloatAbi::kHard).size(), 36u);
  EXPECT_EQ(make_fse_jobs(mcc::FloatAbi::kHard).size(), 24u);
  // Distinct names.
  const auto jobs = make_mvc_jobs(mcc::FloatAbi::kSoft);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_NE(jobs[i].name, jobs[0].name);
  }
}

TEST(Kernels, ProgramsAreCachedPerAbi) {
  const auto& a = fse_program(mcc::FloatAbi::kHard);
  const auto& b = fse_program(mcc::FloatAbi::kHard);
  EXPECT_EQ(&a, &b);
  const auto& c = fse_program(mcc::FloatAbi::kSoft);
  EXPECT_NE(&a, &c);
  EXPECT_GT(c.size(), a.size());  // soft build links the runtime
}

}  // namespace
}  // namespace nfp::workloads
