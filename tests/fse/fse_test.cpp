// Host FSE reference: FFT properties and extrapolation quality.
#include "fse/fse_ref.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fse/image_gen.h"

namespace nfp::fse {
namespace {

using cd = std::complex<double>;

TEST(Fft, InverseRoundTrip) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cd> data(64);
  for (auto& v : data) v = cd(dist(rng), dist(rng));
  auto copy = data;
  fft_inplace(copy, false);
  fft_inplace(copy, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Unscaled transforms: round trip multiplies by N.
    EXPECT_NEAR(copy[i].real(), data[i].real() * 64.0, 1e-9);
    EXPECT_NEAR(copy[i].imag(), data[i].imag() * 64.0, 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<cd> data(128);
  double spatial_energy = 0.0;
  for (auto& v : data) {
    v = cd(dist(rng), dist(rng));
    spatial_energy += std::norm(v);
  }
  fft_inplace(data, false);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, spatial_energy * 128.0, 1e-6);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cd> data(16, cd(0.0, 0.0));
  data[0] = cd(1.0, 0.0);
  fft_inplace(data, false);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cd> data(12);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
}

TEST(Fft2, SeparableMatchesDirectDft) {
  // Small 4x4 against a brute-force 2D DFT.
  const int n = 4;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<cd> data(16);
  for (auto& v : data) v = cd(dist(rng), 0.0);
  auto fast = data;
  fft2_inplace(fast, n, false);
  for (int ky = 0; ky < n; ++ky) {
    for (int kx = 0; kx < n; ++kx) {
      cd acc{};
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const double angle =
              -2.0 * M_PI * (kx * x + ky * y) / static_cast<double>(n);
          acc += data[y * n + x] * cd(std::cos(angle), std::sin(angle));
        }
      }
      EXPECT_NEAR(fast[ky * n + kx].real(), acc.real(), 1e-9);
      EXPECT_NEAR(fast[ky * n + kx].imag(), acc.imag(), 1e-9);
    }
  }
}

TEST(FseRef, ResidualEnergyNonIncreasing) {
  for (const std::uint64_t seed : {1u, 5u, 9u}) {
    const auto img = make_image(16, seed);
    const auto mask = make_mask(16, seed, MaskKind::kBlock);
    auto distorted = img;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) distorted[i] = 0.0;
    }
    const auto trace = residual_energy_trace(distorted, mask);
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_LE(trace[i], trace[i - 1] * (1.0 + 1e-12)) << "iteration " << i;
    }
    EXPECT_LT(trace.back(), trace.front());
  }
}

TEST(FseRef, KnownSamplesAreKept) {
  const auto img = make_image(16, 3);
  const auto mask = make_mask(16, 3, MaskKind::kScatter);
  auto distorted = img;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) distorted[i] = 0.0;
  }
  const auto out = extrapolate(distorted, mask);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!mask[i]) EXPECT_EQ(out[i], distorted[i]);
  }
}

TEST(FseRef, ExtrapolationBeatsZeroFill) {
  // Reconstruction quality on the masked samples must clearly beat leaving
  // them at zero, across mask kinds.
  for (int k = 0; k < 6; ++k) {
    const auto img = make_image(16, 100 + k);
    const auto mask = make_mask(16, 100 + k, static_cast<MaskKind>(k % 3));
    auto distorted = img;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) distorted[i] = 0.0;
    }
    const auto out = extrapolate(distorted, mask);
    const double psnr_zero = masked_psnr(img, distorted, mask);
    const double psnr_fse = masked_psnr(img, out, mask);
    EXPECT_GT(psnr_fse, psnr_zero + 6.0)
        << "kernel " << k << ": " << psnr_zero << " -> " << psnr_fse;
  }
}

TEST(FseRef, MoreIterationsDoNotHurt) {
  const auto img = make_image(16, 55);
  const auto mask = make_mask(16, 55, MaskKind::kStripes);
  auto distorted = img;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) distorted[i] = 0.0;
  }
  FseParams few;
  few.iterations = 8;
  FseParams many;
  many.iterations = 64;
  const double p_few = masked_psnr(img, extrapolate(distorted, mask, few), mask);
  const double p_many =
      masked_psnr(img, extrapolate(distorted, mask, many), mask);
  EXPECT_GT(p_many, p_few - 0.5);  // allow tiny non-monotonicity
}

TEST(ImageGen, DeterministicAndInRange) {
  const auto a = make_image(16, 9);
  const auto b = make_image(16, 9);
  const auto c = make_image(16, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const double v : a) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
  }
}

TEST(ImageGen, MasksLoseSomeButNotAll) {
  for (int k = 0; k < 3; ++k) {
    const auto mask = make_mask(16, 77 + k, static_cast<MaskKind>(k));
    int lost = 0;
    for (const int m : mask) lost += m != 0;
    EXPECT_GT(lost, 8) << k;
    EXPECT_LT(lost, 200) << k;
  }
}

}  // namespace
}  // namespace nfp::fse
