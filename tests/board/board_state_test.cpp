// Resume bit-identity for the measurement board: a snapshot carries the
// SDRAM open-row state, cache tags, meter accumulators (cycles, per-op
// counts, residual energy — compared bit-cast), operand-toggle history, and
// the switching-activity LFSR, so a restored board continues with ground
// truth bit-for-bit identical to the uninterrupted run in every dispatch
// mode and fidelity/cache configuration. Restores under a different
// configuration are refused.
#include "board/board.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>

#include "asmkit/assembler.h"
#include "board/cost_model.h"
#include "board/events.h"
#include "sim/digest.h"
#include "sim/iss.h"
#include "sim/jit.h"
#include "sim/memmap.h"
#include "sim/state_io.h"

namespace nfp::board {
namespace {

// Loads and stores striding across SDRAM rows (row misses), both branch
// directions, and operand-varying arithmetic — every residual kind and every
// accumulator the snapshot must carry.
asmkit::Program board_program(int iterations) {
  return asmkit::assemble(
      "_start: set " + std::to_string(iterations) + R"(, %l0
        set 0x40700000, %l1
        clr %l3
loop:   st %l0, [%l1 + %l3]
        ld [%l1 + %l3], %l4
        add %l3, 820, %l3
        and %l3, 0xffc, %l3
        andcc %l0, 3, %g0
        be skip
        xor %l4, %l0, %l5
        add %l5, %l4, %l6
skip:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)",
      sim::kTextBase);
}

struct BoardObserved {
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t energy_bits = 0;  // bit-cast: "identical" means identical
  BoardStats stats;
  std::uint64_t activity = 0;
  sim::ArchStateDigest digest{};
  bool halted = false;
};

BoardObserved observe(Board& b) {
  BoardObserved o;
  o.instret = b.cpu().instret;
  o.cycles = b.cycles();
  o.energy_bits = std::bit_cast<std::uint64_t>(b.true_energy_nj());
  o.stats = b.stats();
  o.activity = b.switching_activity();
  o.digest = sim::arch_digest(b.cpu(), b.bus());
  o.halted = b.cpu().halted;
  return o;
}

void expect_equal(const BoardObserved& got, const BoardObserved& want,
                  const std::string& where) {
  EXPECT_EQ(got.instret, want.instret) << where;
  EXPECT_EQ(got.cycles, want.cycles) << where;
  EXPECT_EQ(got.energy_bits, want.energy_bits) << where;
  EXPECT_EQ(got.stats, want.stats) << where;
  EXPECT_EQ(got.activity, want.activity) << where;
  EXPECT_EQ(got.digest, want.digest) << where;
  EXPECT_EQ(got.halted, want.halted) << where;
}

std::vector<sim::Dispatch> board_modes() {
  // kJit is always in the list: on hosts without the jit the executor runs
  // chained block dispatch under the kJit label, which must also resume.
  return {sim::Dispatch::kStep, sim::Dispatch::kBlock, sim::Dispatch::kJit};
}

void resume_battery(const BoardConfig& cfg, const std::string& variant) {
  const auto prog = board_program(120);
  for (const sim::Dispatch d : board_modes()) {
    Board straight(cfg);
    straight.load(prog);
    straight.run(1'000'000, d);
    const BoardObserved want = observe(straight);
    ASSERT_TRUE(want.halted) << variant;

    for (const std::uint64_t stop : {1ull, 7ull, 23ull, 150ull, 500ull}) {
      Board a(cfg), b(cfg);
      a.load(prog);
      a.run(stop, d);
      std::stringstream buf;
      a.save_state(buf);
      b.restore_state(buf);
      expect_equal(observe(b), observe(a),
                   variant + " at stop " + std::to_string(stop));
      b.run(1'000'000, d);
      expect_equal(observe(b), want,
                   variant + " resumed from " + std::to_string(stop) +
                       " mode " + std::to_string(static_cast<int>(d)));
    }
  }
}

TEST(BoardState, ResumeApproxTimed) { resume_battery(BoardConfig{}, "approx"); }

TEST(BoardState, ResumeCycleStepped) {
  BoardConfig cfg;
  cfg.fidelity = Fidelity::kCycleStepped;
  resume_battery(cfg, "cycle-stepped");
}

TEST(BoardState, ResumeWithDataCache) {
  BoardConfig cfg;
  cfg.enable_cache = true;
  cfg.cache_lines = 64;
  resume_battery(cfg, "cached");
}

TEST(BoardState, MeasurementAfterResumeMatches) {
  // measure() is a pure function of ground truth + config, so a resumed
  // board's bench reading is bit-identical too.
  const auto prog = board_program(80);
  Board straight;
  straight.load(prog);
  straight.run(1'000'000);
  const Measurement want = straight.measure("kernel-x");

  Board a, b;
  a.load(prog);
  a.run(100);
  std::stringstream buf;
  a.save_state(buf);
  b.restore_state(buf);
  b.run(1'000'000);
  const Measurement got = b.measure("kernel-x");
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.energy_nj),
            std::bit_cast<std::uint64_t>(want.energy_nj));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got.time_s),
            std::bit_cast<std::uint64_t>(want.time_s));
}

TEST(BoardState, EventCountersSurviveSnapshotAndResume) {
  // The PMU export (board/events.h) is derived entirely from snapshot state,
  // so a restored board's counter vector is bit-identical at the checkpoint
  // and stays identical to the uninterrupted run after resuming — in every
  // dispatch mode.
  const auto prog = board_program(120);
  for (const sim::Dispatch d : board_modes()) {
    Board straight;
    straight.load(prog);
    straight.run(1'000'000, d);
    const EventCounters want = straight.events();
    // The battery program must actually exercise the counters it guards.
    EXPECT_NE(want[Event::kRetired], 0u);
    EXPECT_NE(want[Event::kLoads], 0u);
    EXPECT_NE(want[Event::kStores], 0u);
    EXPECT_NE(want[Event::kRowMisses], 0u);
    EXPECT_NE(want[Event::kBranchesTaken], 0u);
    EXPECT_NE(want[Event::kBranchesUntaken], 0u);
    EXPECT_EQ(want[Event::kStallCycles],
              want[Event::kRowMisses] * CostModel{}.row_miss_cycles());

    Board a, b;
    a.load(prog);
    a.run(37, d);
    std::stringstream buf;
    a.save_state(buf);
    b.restore_state(buf);
    EXPECT_EQ(b.events(), a.events())
        << "mode " << static_cast<int>(d) << " at checkpoint";
    b.run(1'000'000, d);
    EXPECT_EQ(b.events(), want)
        << "mode " << static_cast<int>(d) << " after resume";
  }
}

TEST(BoardState, ConfigMismatchRejected) {
  const auto prog = board_program(50);
  Board src;
  src.load(prog);
  src.run(60);
  std::stringstream buf;
  src.save_state(buf);

  BoardConfig other;
  other.seed = 0xDEADBEEFu;  // any fingerprint field difference refuses
  Board target(other);
  target.load(prog);
  target.run(10);
  const BoardObserved before = observe(target);

  sim::StateErrorCode code = sim::StateErrorCode::kIo;
  try {
    target.restore_state(buf);
  } catch (const sim::StateError& e) {
    code = e.code;
  }
  EXPECT_EQ(code, sim::StateErrorCode::kConfigMismatch);
  expect_equal(observe(target), before, "target after refused restore");
}

TEST(BoardState, BoardSnapshotRefusedByIss) {
  // Board chunks are foreign to a platform-only restore: structured error,
  // never silently skipped.
  Board src;
  src.load(board_program(50));
  src.run(30);
  std::stringstream buf;
  src.save_state(buf);

  sim::FunctionalSim f;
  f.load(board_program(50));
  sim::StateErrorCode code = sim::StateErrorCode::kIo;
  try {
    sim::restore_state(buf, f.platform());
  } catch (const sim::StateError& e) {
    code = e.code;
  }
  EXPECT_EQ(code, sim::StateErrorCode::kUnknownChunk);
}

TEST(BoardState, RestoreIntoFreshBoardWithoutLoad) {
  // restore_state is self-contained: a never-loaded board works as a target.
  const auto prog = board_program(60);
  Board straight;
  straight.load(prog);
  straight.run(1'000'000);

  Board a;
  a.load(prog);
  a.run(77);
  std::stringstream buf;
  a.save_state(buf);

  Board fresh;  // no load()
  fresh.restore_state(buf);
  fresh.run(1'000'000);
  expect_equal(observe(fresh), observe(straight), "fresh-target resume");
}

}  // namespace
}  // namespace nfp::board
