// Directed step-vs-block regressions for the board's block-cost dispatch:
// whole-block static cost profiles plus dynamic residual callbacks must be
// bit-for-bit indistinguishable from per-instruction stepping — cycles,
// energy (IEEE-754 identical), BoardStats, switching activity, and the full
// architectural outcome.
#include <bit>
#include <cstdint>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "board/board.h"
#include "board/hooks.h"
#include "isa/decode.h"
#include "sim/bus.h"
#include "sim/jit.h"
#include "sim/memmap.h"

namespace nfp::board {
namespace {

asmkit::Program prog(const std::string& src) {
  return asmkit::assemble(src, sim::kTextBase);
}

BoardConfig loud_config() {
  // Variation ON so every residual kind is live (memory, branch, and the
  // operand-toggle residual on plain ALU/FP ops); meter noise off because
  // the comparison targets ground truth, not the bench front end.
  BoardConfig cfg;
  cfg.enable_meter_noise = false;
  return cfg;
}

struct Outcome {
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t energy_bits = 0;
  std::uint64_t activity = 0;
  BoardStats stats;
  std::uint32_t exit_code = 0;
  std::uint32_t g1 = 0;

  bool operator==(const Outcome&) const = default;
};

Outcome run_board(const asmkit::Program& p, const BoardConfig& cfg,
                  sim::Dispatch dispatch) {
  Board brd(cfg);
  brd.load(p);
  const auto result = brd.run(Board::kDefaultMaxInsns, dispatch);
  EXPECT_TRUE(result.halted);
  Outcome o;
  o.instret = result.instret;
  o.cycles = brd.cycles();
  o.energy_bits = std::bit_cast<std::uint64_t>(brd.true_energy_nj());
  o.activity = brd.switching_activity();
  o.stats = brd.stats();
  o.exit_code = result.exit_code;
  o.g1 = brd.cpu().r[1];
  return o;
}

void expect_all_modes_identical(const std::string& src,
                                const BoardConfig& cfg) {
  const auto p = prog(src);
  const Outcome step = run_board(p, cfg, sim::Dispatch::kStep);
  const Outcome block = run_board(p, cfg, sim::Dispatch::kBlock);
  const Outcome unchained = run_board(p, cfg, sim::Dispatch::kBlockUnchained);
  // kJit runs the cost-mode jit tier where the host can execute emitted
  // code (native static-cost retirement + batched residual replay) and
  // degrades to chained kBlock elsewhere; either way it must match.
  const Outcome jit = run_board(p, cfg, sim::Dispatch::kJit);
  EXPECT_EQ(step, block);
  EXPECT_EQ(step, unchained);
  EXPECT_EQ(step, jit);
  EXPECT_GT(step.cycles, 0u);
}

TEST(BoardDispatch, SdramRowThrashMatchesStepExactly) {
  // Alternating loads/stores across two SDRAM rows (1 KiB apart) from inside
  // one straight-line block: every memory op is a row miss, so the residual
  // callback path carries all of the open-row cycle and energy corrections.
  expect_all_modes_identical(R"(
_start: set 0x40010000, %l0
        set 0x40010400, %l1
        mov 200, %l2
loop:   ld [%l0], %l3
        ld [%l1], %l4
        add %l3, %l4, %l5
        st %l5, [%l0]
        st %l5, [%l1]
        subcc %l2, 1, %l2
        bne loop
        nop
        mov 0, %o0
        ta 0
)",
                             loud_config());
}

TEST(BoardDispatch, RowThrashStatsAreLive) {
  // Sanity on the residual plumbing itself: the thrash loop must actually
  // record row misses under block dispatch, not just match a zero.
  Board brd(loud_config());
  brd.load(prog(R"(
_start: set 0x40010000, %l0
        set 0x40010400, %l1
        mov 50, %l2
loop:   ld [%l0], %l3
        ld [%l1], %l4
        subcc %l2, 1, %l2
        bne loop
        nop
        mov 0, %o0
        ta 0
)"));
  ASSERT_TRUE(brd.run().halted);
  EXPECT_EQ(brd.stats().loads, 100u);
  EXPECT_GE(brd.stats().row_misses, 100u);
}

TEST(BoardDispatch, AnnulledDelaySlotInsidePrecostedBlock) {
  // ba,a: the annulled delay slot (the add of 1000) must never retire — or
  // be cost-profiled — in either mode; bne,a retakes its delay slot only on
  // the taken path. Exercises the branch residual's direction capture and
  // the block boundary against annulment.
  expect_all_modes_identical(R"(
_start: mov 10, %l0
        mov 0, %g1
loop:   add %g1, 1, %g1
        subcc %l0, 1, %l0
        bne,a loop
        add %g1, 2, %g1
        ba,a skip
        add %g1, 1000, %g1
skip:   mov 0, %o0
        ta 0
)",
                             loud_config());
}

TEST(BoardDispatch, AnnulledSlotNeverCosted) {
  // The annulled instruction after ba,a must not contribute energy: with
  // variation off the total is an exact sum of base costs, so one stray
  // retire of the 1000-add would shift it by a whole op.
  BoardConfig quiet = loud_config();
  quiet.enable_variation = false;
  const auto p = prog(R"(
_start: ba,a skip
        add %g1, 1000, %g1
skip:   mov 0, %o0
        ta 0
)");
  const Outcome step = run_board(p, quiet, sim::Dispatch::kStep);
  const Outcome block = run_board(p, quiet, sim::Dispatch::kBlock);
  EXPECT_EQ(step, block);
  EXPECT_EQ(step.g1, 0u);
  const CostModel cost;
  const double expected = cost.of(isa::Op::kBicc).energy_nj +
                          cost.of(isa::Op::kOr).energy_nj +
                          cost.of(isa::Op::kTicc).energy_nj;
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(step.energy_bits), expected);
}

TEST(BoardDispatch, SelfModifyingStoreFlushesMidFlightCostProfile) {
  // The store patches an EARLIER, already-executed instruction of the very
  // block it sits in (add 1 <-> add 2 at `patch:`), so every iteration
  // invalidates the block while its morphed trace and cost profile are
  // mid-flight. The trace completes from the graveyard, the re-morphed
  // block rebuilds its profile, and both dispatch modes must agree on the
  // architectural result and every cost channel.
  expect_all_modes_identical(R"(
_start: mov 40, %l0
        mov 0, %g1
        set patch, %l1
        set insn_b, %l2
        ld [%l2], %l3
loop:
patch:  add %g1, 1, %g1
        st %l3, [%l1]
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
insn_b: add %g1, 2, %g1
)",
                             loud_config());
}

TEST(BoardDispatch, SelfModifyingStoreTakesEffectNextEntry) {
  // Architectural spot check for the kernel above under block dispatch: the
  // first loop iteration runs the original `add 1`, every later one the
  // patched `add 2` — 1 + 39*2 = 79 — matching step mode re-decode timing
  // at block granularity (the patch lands below the store, so the in-flight
  // remainder is unaffected).
  Board brd(loud_config());
  brd.load(prog(R"(
_start: mov 40, %l0
        mov 0, %g1
        set patch, %l1
        set insn_b, %l2
        ld [%l2], %l3
loop:
patch:  add %g1, 1, %g1
        st %l3, [%l1]
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
insn_b: add %g1, 2, %g1
)"));
  ASSERT_TRUE(brd.run().halted);
  EXPECT_EQ(brd.cpu().r[1], 79u);
}

TEST(BoardDispatch, CycleSteppedActivityMatchesAcrossModes) {
  // kCycleStepped advances the activity LFSR per cycle. The block path
  // batches the advance per block; totals must still be bit-identical.
  BoardConfig cfg = loud_config();
  cfg.fidelity = Fidelity::kCycleStepped;
  const auto p = prog(R"(
_start: set 0x40020000, %l0
        mov 30, %l1
loop:   ld [%l0], %l2
        add %l2, %l1, %l2
        st %l2, [%l0]
        add %l0, 0x400, %l0
        subcc %l1, 1, %l1
        bne loop
        nop
        mov 0, %o0
        ta 0
)");
  const Outcome step = run_board(p, cfg, sim::Dispatch::kStep);
  const Outcome block = run_board(p, cfg, sim::Dispatch::kBlock);
  const Outcome jit = run_board(p, cfg, sim::Dispatch::kJit);
  EXPECT_EQ(step, block);
  EXPECT_EQ(step, jit);
  EXPECT_GT(step.activity, 0u);
}

TEST(BoardDispatch, GuardedBlocksFallBackToStepping) {
  // On a MUL-less configuration the umul guard must fault at the exact
  // instruction in both modes, with identical accounting for the completed
  // prefix — ensure_block_cost refuses the block, so the guard fires from
  // the stepping path.
  BoardConfig cfg = loud_config();
  cfg.has_hw_muldiv = false;
  const auto p = prog(R"(
_start: mov 5, %l0
        add %l0, 3, %l1
        umul %l0, %l1, %l2
        mov 0, %o0
        ta 0
)");
  auto run_to_fault = [&](sim::Dispatch dispatch) {
    Board brd(cfg);
    brd.load(p);
    std::string what;
    try {
      brd.run(Board::kDefaultMaxInsns, dispatch);
    } catch (const sim::SimError& e) {
      what = e.what();
    }
    return std::tuple(what, brd.cpu().instret, brd.cycles(),
                      std::bit_cast<std::uint64_t>(brd.true_energy_nj()));
  };
  const auto step = run_to_fault(sim::Dispatch::kStep);
  const auto block = run_to_fault(sim::Dispatch::kBlock);
  EXPECT_EQ(step, block);
  EXPECT_NE(std::get<0>(step).find("MUL/DIV"), std::string::npos);
}

TEST(BoardDispatch, JitCostTierCompilesAndMatchesStep) {
  // On hosts where the jit can run, a board kJit run must actually engage
  // the cost-mode jit tier (blocks compiled, native entries) — not silently
  // degrade to the interpreter — while every cost channel stays
  // bit-identical to stepping (covered by the run_board comparison).
  if (!sim::jit_available()) {
    GTEST_SKIP() << "jit unavailable on this host";
  }
  const auto p = prog(R"(
_start: set 0x40010000, %l0
        mov 500, %l2
loop:   ld [%l0], %l3
        add %l3, %l2, %l3
        st %l3, [%l0]
        subcc %l2, 1, %l2
        bne loop
        nop
        mov 0, %o0
        ta 0
)");
  Board brd(loud_config());
  brd.load(p);
  ASSERT_TRUE(brd.run(Board::kDefaultMaxInsns, sim::Dispatch::kJit).halted);
  const sim::JitRuntime* jr = brd.platform().block_cache()->jit();
  ASSERT_NE(jr, nullptr) << "board kJit run never built the jit runtime";
  EXPECT_GE(jr->stats().blocks_compiled, 1u);
  EXPECT_GE(jr->stats().entries, 1u);
  const Outcome step = run_board(p, loud_config(), sim::Dispatch::kStep);
  const Outcome jit = run_board(p, loud_config(), sim::Dispatch::kJit);
  EXPECT_EQ(step, jit);
}

TEST(BoardDispatch, FaultMidCompiledCostBlockReconcilesResiduals) {
  // The third record of the hot block is a load whose address degrades to
  // misaligned after enough iterations: the block is compiled and cost-
  // profiled long before the fault, which then fires mid-block from native
  // code with two residual-active memory ops already captured. The
  // reconciled fault state — message, instret, cycles, energy bit pattern,
  // and switching activity — must match stepping exactly: the completed
  // blocks replay their residual batch, the faulting block's prefix retires
  // per instruction from its captured operands.
  BoardConfig cfg = loud_config();
  cfg.fidelity = Fidelity::kCycleStepped;
  const auto p = prog(R"(
_start: set 0x40100000, %g1
        set 0x40200000, %g2
        mov 4, %l0
        mov 0, %o0
loop:   ld [%g1], %o1
        st %o1, [%g1]
        ld [%g2], %o2
        add %o0, %o2, %o0
        add %g2, %l0, %g2
        srl %l0, 1, %l0
        ba loop
        nop
)");
  auto run_to_fault = [&](sim::Dispatch dispatch) {
    Board brd(cfg);
    brd.load(p);
    std::string what;
    try {
      brd.run(Board::kDefaultMaxInsns, dispatch);
    } catch (const sim::SimError& e) {
      what = e.what();
    }
    return std::tuple(what, brd.cpu().instret, brd.cpu().pc, brd.cycles(),
                      std::bit_cast<std::uint64_t>(brd.true_energy_nj()),
                      brd.switching_activity(), brd.stats().loads,
                      brd.stats().row_misses);
  };
  const auto step = run_to_fault(sim::Dispatch::kStep);
  const auto block = run_to_fault(sim::Dispatch::kBlock);
  const auto jit = run_to_fault(sim::Dispatch::kJit);
  EXPECT_FALSE(std::get<0>(step).empty()) << "expected an alignment fault";
  EXPECT_EQ(step, block);
  EXPECT_EQ(step, jit);
}

TEST(BoardDispatch, SelfModifyingStoreKillsCompiledCostBlockInFlight) {
  // Jit-focused variant of the mid-flight flush kernel: under kJit the
  // store invalidates the very block whose emitted code is executing (its
  // cost profile and captures included). The run must recompile and stay
  // bit-identical to stepping; on jit hosts the flush must actually have
  // gone through the jit's invalidation path.
  const std::string src = R"(
_start: mov 40, %l0
        mov 0, %g1
        set patch, %l1
        set insn_b, %l2
        ld [%l2], %l3
loop:
patch:  add %g1, 1, %g1
        st %l3, [%l1]
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
insn_b: add %g1, 2, %g1
)";
  const auto p = prog(src);
  Board brd(loud_config());
  brd.load(p);
  ASSERT_TRUE(brd.run(Board::kDefaultMaxInsns, sim::Dispatch::kJit).halted);
  EXPECT_EQ(brd.cpu().r[1], 79u);
  EXPECT_GE(brd.platform().block_cache()->stats().flushes, 1u);
  if (sim::jit_available()) {
    const sim::JitRuntime* jr = brd.platform().block_cache()->jit();
    ASSERT_NE(jr, nullptr);
    EXPECT_GE(jr->stats().blocks_compiled, 1u);
  }
  const Outcome step = run_board(p, loud_config(), sim::Dispatch::kStep);
  const Outcome jit = run_board(p, loud_config(), sim::Dispatch::kJit);
  EXPECT_EQ(step, jit);
}

TEST(BoardDispatch, LeakageShareIsExemptFromToggleVariation) {
  // OpCost::leakage_nj decomposes base energy into a toggle-modulated
  // dynamic share and a static share. An op whose energy is all leakage
  // must cost exactly its base regardless of operand activity; with
  // leakage 0 the full base swings with the toggle factor.
  BoardConfig cfg;
  cfg.enable_variation = true;
  cfg.data_energy_amplitude = 0.30;

  const isa::DecodedInsn add = isa::decode(0x82006001u);  // add %g1, 1, %g1
  sim::RetireInfo noisy;
  noisy.a = 0xFFFFFFFFu;
  noisy.b = 0xA5A5A5A5u;

  CostModel all_leakage;
  all_leakage.of(isa::Op::kAdd).leakage_nj =
      all_leakage.of(isa::Op::kAdd).energy_nj;
  BoardHooks hooks_static(cfg, all_leakage);
  hooks_static.on_retire(add, noisy);
  EXPECT_DOUBLE_EQ(hooks_static.energy_nj(),
                   all_leakage.of(isa::Op::kAdd).energy_nj);

  CostModel no_leakage;
  BoardHooks hooks_dynamic(cfg, no_leakage);
  hooks_dynamic.on_retire(add, noisy);
  EXPECT_NE(hooks_dynamic.energy_nj(), no_leakage.of(isa::Op::kAdd).energy_nj);
}

}  // namespace
}  // namespace nfp::board
