#include "board/board.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "board/area.h"
#include "sim/memmap.h"

namespace nfp::board {
namespace {

asmkit::Program prog(const std::string& src) {
  return asmkit::assemble(src, sim::kTextBase);
}

BoardConfig quiet_config() {
  BoardConfig cfg;
  cfg.enable_variation = false;
  cfg.enable_meter_noise = false;
  return cfg;
}

TEST(Board, CycleAccountingIsDeterministic) {
  const auto p = prog(R"(
_start: mov 100, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)");
  Board a(quiet_config());
  a.load(p);
  ASSERT_TRUE(a.run().halted);
  Board b(quiet_config());
  b.load(p);
  ASSERT_TRUE(b.run().halted);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_EQ(a.true_energy_nj(), b.true_energy_nj());
  EXPECT_GT(a.cycles(), 0u);
}

TEST(Board, NoiseFreeCostsMatchTheCostModel) {
  // 10 adds and a halt: cycles = 10*2 (add) + mov(2) + trap(14).
  Board brd(quiet_config());
  brd.load(prog(R"(
_start: add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        add %g1, 1, %g1
        mov 0, %o0
        ta 0
)"));
  ASSERT_TRUE(brd.run().halted);
  const CostModel cost;
  const auto add_cost = cost.of(isa::Op::kAdd);
  const auto or_cost = cost.of(isa::Op::kOr);
  const auto ta_cost = cost.of(isa::Op::kTicc);
  EXPECT_EQ(brd.cycles(),
            10 * add_cost.cycles + or_cost.cycles + ta_cost.cycles);
  EXPECT_DOUBLE_EQ(brd.true_energy_nj(), 10 * add_cost.energy_nj +
                                             or_cost.energy_nj +
                                             ta_cost.energy_nj);
}

TEST(Board, BranchDirectionChangesCycles) {
  // Taken branches cost more than untaken ones.
  const char* taken = R"(
_start: cmp %g0, 0
        be target
        nop
target: mov 0, %o0
        ta 0
)";
  const char* untaken = R"(
_start: cmp %g0, 1
        be target
        nop
target: mov 0, %o0
        ta 0
)";
  Board a(quiet_config());
  a.load(prog(taken));
  ASSERT_TRUE(a.run().halted);
  Board b(quiet_config());
  b.load(prog(untaken));
  ASSERT_TRUE(b.run().halted);
  EXPECT_GT(a.cycles(), b.cycles());
}

TEST(Board, SdramRowMissesCostExtraCycles) {
  // Sequential loads stay within one open row; scattered loads do not.
  const char* sequential = R"(
_start: set data, %g1
        ld [%g1], %l1
        ld [%g1+4], %l1
        ld [%g1+8], %l1
        ld [%g1+12], %l1
        mov 0, %o0
        ta 0
        .data
data:   .word 1, 2, 3, 4
)";
  const char* scattered = R"(
_start: set data, %g1
        set 0x40400000, %g2
        ld [%g1], %l1
        ld [%g2], %l1
        ld [%g1+8], %l1
        ld [%g2+8], %l1
        mov 0, %o0
        ta 0
        .data
data:   .word 1, 2, 3, 4
)";
  Board a(quiet_config());
  a.load(prog(sequential));
  ASSERT_TRUE(a.run().halted);
  Board b(quiet_config());
  b.load(prog(scattered));
  ASSERT_TRUE(b.run().halted);
  EXPECT_GT(b.cycles(), a.cycles());
  EXPECT_GT(b.stats().row_misses, a.stats().row_misses);
}

TEST(Board, DataDependentEnergyVariation) {
  // Same instruction count, different operand activity => different energy
  // when variation is on, identical when off.
  const char* low_activity = R"(
_start: mov 0, %l1
        add %l1, %l1, %l2
        add %l1, %l1, %l2
        add %l1, %l1, %l2
        mov 0, %o0
        ta 0
)";
  const char* high_activity = R"(
_start: set 0xAAAAAAAA, %l1
        set 0x55555555, %l3
        add %l1, %l3, %l2
        add %l3, %l1, %l2
        add %l1, %l3, %l2
        mov 0, %o0
        ta 0
)";
  BoardConfig vary = quiet_config();
  vary.enable_variation = true;
  Board a(vary);
  a.load(prog(low_activity));
  ASSERT_TRUE(a.run().halted);
  Board b(vary);
  b.load(prog(high_activity));
  ASSERT_TRUE(b.run().halted);
  // high_activity has one extra `set` (2 insns worth ~26-29 nJ); the toggle
  // effect on three adds at amplitude 0.16 is what we check ordering for.
  EXPECT_NE(a.true_energy_nj(), b.true_energy_nj());
}

TEST(Board, FpuInstructionsRejectedWithoutFpu) {
  BoardConfig cfg = quiet_config();
  cfg.has_fpu = false;
  Board brd(cfg);
  brd.load(prog(R"(
_start: set d, %g1
        lddf [%g1], %f0
        faddd %f0, %f0, %f2
        ta 0
        .data
        .align 8
d:      .double 1.0
)"));
  EXPECT_THROW(brd.run(), sim::SimError);
}

TEST(Board, MulDivInstructionsRejectedWithoutHardwareUnits) {
  BoardConfig cfg = quiet_config();
  cfg.has_hw_muldiv = false;
  Board brd(cfg);
  brd.load(prog(R"(
_start: mov 6, %l0
        umul %l0, %l0, %o0
        ta 0
)"));
  EXPECT_THROW(brd.run(), sim::SimError);
}

TEST(AreaModelMulDiv, UnitsCostArea) {
  AreaModel area;
  BoardConfig minimal;
  minimal.has_fpu = false;
  minimal.has_hw_muldiv = false;
  BoardConfig with_muldiv = minimal;
  with_muldiv.has_hw_muldiv = true;
  EXPECT_EQ(area.synthesize(minimal).total(), 4000u);
  EXPECT_EQ(area.synthesize(with_muldiv).total(), 5200u);
}

TEST(Board, MeterNoiseIsSeededPerKernelTag) {
  BoardConfig cfg;
  cfg.enable_meter_noise = true;
  Board brd(cfg);
  brd.load(prog("_start: mov 0, %o0\n ta 0\n"));
  ASSERT_TRUE(brd.run().halted);
  const auto m1 = brd.measure("kernel-a");
  const auto m2 = brd.measure("kernel-a");
  const auto m3 = brd.measure("kernel-b");
  EXPECT_EQ(m1.energy_nj, m2.energy_nj);  // reproducible
  EXPECT_NE(m1.energy_nj, m3.energy_nj);  // independent across kernels
}

TEST(Board, MeasurementCloseToGroundTruth) {
  BoardConfig cfg;  // defaults: noise on
  Board brd(cfg);
  brd.load(prog(R"(
_start: set 100000, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)"));
  ASSERT_TRUE(brd.run().halted);
  const auto m = brd.measure("loop-kernel");
  EXPECT_NEAR(m.energy_nj / brd.true_energy_nj(), 1.0, 0.02);
  EXPECT_NEAR(m.time_s / brd.true_time_s(), 1.0, 0.02);
}

TEST(Board, CacheExtensionReducesLoadCycles) {
  const char* loads = R"(
_start: set data, %g1
        set 1000, %l0
loop:   ld [%g1], %l1
        ld [%g1+4], %l2
        ld [%g1+8], %l3
        subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
        .data
data:   .word 1, 2, 3, 4
)";
  BoardConfig plain = quiet_config();
  BoardConfig cached = quiet_config();
  cached.enable_cache = true;
  Board a(plain);
  a.load(prog(loads));
  ASSERT_TRUE(a.run().halted);
  Board b(cached);
  b.load(prog(loads));
  ASSERT_TRUE(b.run().halted);
  EXPECT_LT(b.cycles(), a.cycles());
  EXPECT_GT(b.stats().cache_hits, 2900u);  // 3000 loads, 1 compulsory miss line
}

TEST(Board, CycleSteppedFidelityMatchesApproxTotals) {
  const char* src = R"(
_start: set 200, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 0, %o0
        ta 0
)";
  BoardConfig approx = quiet_config();
  BoardConfig stepped = quiet_config();
  stepped.fidelity = Fidelity::kCycleStepped;
  Board a(approx);
  a.load(prog(src));
  ASSERT_TRUE(a.run().halted);
  Board b(stepped);
  b.load(prog(src));
  ASSERT_TRUE(b.run().halted);
  EXPECT_EQ(a.cycles(), b.cycles());
  EXPECT_DOUBLE_EQ(a.true_energy_nj(), b.true_energy_nj());
}

TEST(AreaModel, FpuRoughlyDoublesTheDesign) {
  AreaModel area;
  EXPECT_NEAR(area.fpu_area_increase_percent(), 109.0, 1.0);
  BoardConfig with;
  with.has_fpu = true;
  BoardConfig without;
  without.has_fpu = false;
  EXPECT_GT(area.synthesize(with).total(), area.synthesize(without).total());
  EXPECT_EQ(area.synthesize(without).fpu_les, 0u);
}

}  // namespace
}  // namespace nfp::board
