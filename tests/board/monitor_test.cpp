#include "board/monitor.h"

#include <gtest/gtest.h>

#include "asmkit/assembler.h"
#include "sim/memmap.h"

namespace nfp::board {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.enable_meter_noise = false;
    board_ = std::make_unique<Board>(cfg_);
    board_->load(asmkit::assemble(R"(
_start: mov 5, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        nop
        mov 77, %o0
        ta 0
)",
                                  sim::kTextBase));
    monitor_ = std::make_unique<DebugMonitor>(*board_);
  }

  BoardConfig cfg_;
  std::unique_ptr<Board> board_;
  std::unique_ptr<DebugMonitor> monitor_;
};

TEST_F(MonitorTest, RegDumpShowsPcAndRegisters) {
  const std::string out = monitor_->command("reg");
  EXPECT_NE(out.find("%g0 0x00000000"), std::string::npos);
  EXPECT_NE(out.find("pc 0x40000000"), std::string::npos);
  EXPECT_NE(out.find("icc:"), std::string::npos);
}

TEST_F(MonitorTest, StepAdvancesOneInstruction) {
  monitor_->command("step");
  EXPECT_EQ(board_->cpu().pc, sim::kTextBase + 4);
  EXPECT_EQ(board_->cpu().r[16], 5u);  // %l0
  monitor_->command("step 3");
  EXPECT_EQ(board_->cpu().instret, 4u);
}

TEST_F(MonitorTest, DisassemblesAtPc) {
  const std::string out = monitor_->command("dis");
  EXPECT_NE(out.find("or %g0, 5, %l0"), std::string::npos);
  EXPECT_NE(out.find("subcc %l0, 1, %l0"), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);  // current-pc marker
}

TEST_F(MonitorTest, BreakpointStopsRun) {
  // Break on the final mov at _start+16.
  const std::uint32_t target = sim::kTextBase + 16;
  monitor_->command("break " + std::to_string(target));
  const std::string out = monitor_->command("run");
  EXPECT_NE(out.find("breakpoint hit"), std::string::npos);
  EXPECT_EQ(board_->cpu().pc, target);
  EXPECT_FALSE(board_->cpu().halted);
  // Continue to completion.
  monitor_->command("delete " + std::to_string(target));
  const std::string done = monitor_->command("run");
  EXPECT_NE(done.find("halted with exit code 77"), std::string::npos);
}

TEST_F(MonitorTest, MemDumpReadsRam) {
  const std::string out =
      monitor_->command("mem " + std::to_string(sim::kTextBase) + " 4");
  // First word is `mov 5, %l0` == or %g0,5,%l0 == 0xa0102005.
  EXPECT_NE(out.find("0xa0102005"), std::string::npos);
}

TEST_F(MonitorTest, InfoReportsNfpState) {
  monitor_->command("run");
  const std::string out = monitor_->command("info");
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("energy"), std::string::npos);
  EXPECT_NE(out.find("branches"), std::string::npos);
}

TEST_F(MonitorTest, UnknownCommandIsGraceful) {
  EXPECT_NE(monitor_->command("explode").find("unknown command"),
            std::string::npos);
  EXPECT_NE(monitor_->command("help").find("commands:"), std::string::npos);
  EXPECT_EQ(monitor_->command(""), "");
  EXPECT_NE(monitor_->command("mem").find("usage"), std::string::npos);
}

}  // namespace
}  // namespace nfp::board
