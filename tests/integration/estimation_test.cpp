// End-to-end integration: the full paper pipeline (calibrate -> count ->
// estimate -> compare with measurement) on small kernel sets, asserting the
// headline property: low single-digit-percent estimation errors.
#include <gtest/gtest.h>

#include "board/area.h"
#include "nfp/calibration.h"
#include "nfp/campaign.h"
#include "nfp/dse.h"
#include "nfp/error.h"
#include "nfp/estimator.h"
#include "workloads/kernels.h"

namespace nfp {
namespace {

struct Pipeline {
  board::BoardConfig cfg;
  model::CategoryCosts costs;

  Pipeline() {
    model::CalibrationPlan plan;
    plan.loops = 40'000;
    costs = model::Calibrator(model::CategoryScheme::paper(), plan)
                .run(cfg)
                .costs;
  }

  model::ErrorStats energy_errors(const std::vector<model::KernelJob>& jobs,
                                  model::ErrorStats* time_out = nullptr) {
    model::Campaign campaign(cfg);
    const auto records = campaign.run(jobs);
    std::vector<double> est_e, meas_e, est_t, meas_t;
    for (const auto& rec : records) {
      EXPECT_TRUE(rec.ok) << rec.name << ": " << rec.error;
      if (!rec.ok) continue;
      const auto est = model::estimate(
          rec.counts, model::CategoryScheme::paper(), costs);
      est_e.push_back(est.energy_nj);
      meas_e.push_back(rec.measured.energy_nj);
      est_t.push_back(est.time_s);
      meas_t.push_back(rec.measured.time_s);
    }
    if (time_out) *time_out = model::error_stats(est_t, meas_t);
    return model::error_stats(est_e, meas_e);
  }
};

Pipeline& pipeline() {
  static Pipeline instance;
  return instance;
}

TEST(EstimationPipeline, HevcKernelsWithinPaperErrorBand) {
  workloads::MvcKernelParams params;
  params.qps = {32};
  params.frames = 3;
  auto jobs = workloads::make_mvc_jobs(mcc::FloatAbi::kHard, params);
  jobs.resize(4);  // one stream per configuration
  model::ErrorStats time_stats;
  const auto energy = pipeline().energy_errors(jobs, &time_stats);
  EXPECT_LT(energy.mean_abs_percent(), 8.0);
  EXPECT_LT(energy.max_abs_percent(), 12.0);
  EXPECT_LT(time_stats.mean_abs_percent(), 8.0);
  EXPECT_LT(time_stats.max_abs_percent(), 12.0);
}

TEST(EstimationPipeline, FseKernelsWithinPaperErrorBand) {
  workloads::FseKernelParams params;
  params.count = 2;
  params.iterations = 24;
  std::vector<model::KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_fse_jobs(abi, params)) {
      jobs.push_back(std::move(j));
    }
  }
  model::ErrorStats time_stats;
  const auto energy = pipeline().energy_errors(jobs, &time_stats);
  EXPECT_LT(energy.mean_abs_percent(), 8.0);
  EXPECT_LT(time_stats.mean_abs_percent(), 8.0);
}

TEST(EstimationPipeline, IdealBoardIsNearExact) {
  // Property from DESIGN.md: with variation and meter noise disabled, the
  // mechanistic model's only residual errors are context effects the
  // calibration kernels share (essentially zero for matching mixes).
  board::BoardConfig ideal;
  ideal.enable_variation = false;
  ideal.enable_meter_noise = false;
  model::CalibrationPlan plan;
  plan.loops = 40'000;
  const auto costs =
      model::Calibrator(model::CategoryScheme::paper(), plan).run(ideal).costs;

  workloads::SobelKernelParams params;
  params.count = 2;
  auto jobs = workloads::make_sobel_jobs(mcc::FloatAbi::kHard, params);
  model::Campaign campaign(ideal);
  for (const auto& rec : campaign.run(jobs)) {
    ASSERT_TRUE(rec.ok) << rec.error;
    const auto est =
        model::estimate(rec.counts, model::CategoryScheme::paper(), costs);
    // Remaining error: umul/udiv lumping and SDRAM row state only.
    EXPECT_NEAR(est.energy_nj / rec.measured.energy_nj, 1.0, 0.05);
    EXPECT_NEAR(est.time_s / rec.measured.time_s, 1.0, 0.06);
  }
}

TEST(EstimationPipeline, FpuImpactDirectionallyCorrect) {
  workloads::FseKernelParams params;
  params.count = 2;
  params.iterations = 16;
  const auto float_jobs = workloads::make_fse_jobs(mcc::FloatAbi::kHard, params);
  const auto fixed_jobs = workloads::make_fse_jobs(mcc::FloatAbi::kSoft, params);
  model::Campaign campaign(pipeline().cfg);
  std::vector<model::Estimate> with_fpu, soft;
  for (const auto& rec : campaign.run(float_jobs)) {
    ASSERT_TRUE(rec.ok);
    with_fpu.push_back(model::estimate(
        rec.counts, model::CategoryScheme::paper(), pipeline().costs));
  }
  for (const auto& rec : campaign.run(fixed_jobs)) {
    ASSERT_TRUE(rec.ok);
    soft.push_back(model::estimate(
        rec.counts, model::CategoryScheme::paper(), pipeline().costs));
  }
  const auto impact = model::fpu_impact("fse", with_fpu, soft);
  EXPECT_LT(impact.energy_change_percent, -85.0);  // paper: -92.6%
  EXPECT_LT(impact.time_change_percent, -85.0);    // paper: -92.8%
  EXPECT_NEAR(impact.area_change_percent, 109.0, 2.0);
}

}  // namespace
}  // namespace nfp
