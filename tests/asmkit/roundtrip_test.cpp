// Property: for register-addressed instructions, the disassembler output is
// valid assembler input and round-trips to the identical machine word.
#include <gtest/gtest.h>

#include <random>

#include "asmkit/assembler.h"
#include "isa/decode.h"
#include "isa/disasm.h"
#include "isa/encode.h"

namespace nfp::asmkit {
namespace {

using isa::Op;

std::uint32_t first_word(const Program& p) {
  const auto& b = p.bytes();
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | b[3];
}

void expect_roundtrip(std::uint32_t word) {
  const std::string text = isa::disassemble_word(word, 0);
  SCOPED_TRACE(text);
  Program reassembled;
  ASSERT_NO_THROW(reassembled = assemble(text + "\n", 0));
  EXPECT_EQ(first_word(reassembled), word);
}

class DisasmRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisasmRoundTrip, AluRegisterForms) {
  std::mt19937_64 rng(GetParam());
  const Op ops[] = {Op::kAdd,  Op::kAddcc, Op::kSub, Op::kSubcc, Op::kAnd,
                    Op::kOr,   Op::kXor,   Op::kSll, Op::kSrl,   Op::kSra,
                    Op::kUmul, Op::kSmul,  Op::kUdiv, Op::kSdiv, Op::kAndn,
                    Op::kOrn,  Op::kXnor,  Op::kAddx, Op::kSubx};
  for (int i = 0; i < 200; ++i) {
    const Op op = ops[rng() % std::size(ops)];
    const auto rd = static_cast<std::uint8_t>(rng() % 32);
    const auto rs1 = static_cast<std::uint8_t>(rng() % 32);
    const auto rs2 = static_cast<std::uint8_t>(rng() % 32);
    expect_roundtrip(isa::enc_alu(op, rd, rs1, rs2));
    const auto imm = static_cast<std::int32_t>(rng() % 8192) - 4096;
    expect_roundtrip(isa::enc_alu_imm(op, rd, rs1, imm));
  }
}

TEST_P(DisasmRoundTrip, MemoryForms) {
  std::mt19937_64 rng(GetParam() ^ 0xABCD);
  const Op ops[] = {Op::kLd,  Op::kLdub, Op::kLdsb, Op::kLduh, Op::kLdsh,
                    Op::kLdd, Op::kSt,   Op::kStb,  Op::kSth,  Op::kStd,
                    Op::kLdf, Op::kLddf, Op::kStf,  Op::kStdf};
  for (int i = 0; i < 200; ++i) {
    const Op op = ops[rng() % std::size(ops)];
    const auto rd = static_cast<std::uint8_t>(rng() % 32);
    const auto rs1 = static_cast<std::uint8_t>(rng() % 32);
    const auto imm = static_cast<std::int32_t>(rng() % 8192) - 4096;
    expect_roundtrip(isa::enc_mem_imm(op, rd, rs1, imm));
  }
}

TEST_P(DisasmRoundTrip, FpuForms) {
  std::mt19937_64 rng(GetParam() ^ 0x5555);
  const Op two_src[] = {Op::kFadds, Op::kFaddd, Op::kFsubs, Op::kFsubd,
                        Op::kFmuls, Op::kFmuld, Op::kFdivs, Op::kFdivd};
  const Op one_src[] = {Op::kFmovs, Op::kFnegs, Op::kFabss, Op::kFsqrts,
                        Op::kFsqrtd, Op::kFitos, Op::kFitod, Op::kFstoi,
                        Op::kFdtoi, Op::kFstod, Op::kFdtos};
  for (int i = 0; i < 100; ++i) {
    const auto rd = static_cast<std::uint8_t>(rng() % 32);
    const auto rs1 = static_cast<std::uint8_t>(rng() % 32);
    const auto rs2 = static_cast<std::uint8_t>(rng() % 32);
    expect_roundtrip(
        isa::enc_fp(two_src[rng() % std::size(two_src)], rd, rs1, rs2));
    expect_roundtrip(isa::enc_fp(one_src[rng() % std::size(one_src)], rd, 0,
                                 rs2));
    expect_roundtrip(isa::enc_fp(rng() % 2 ? Op::kFcmpd : Op::kFcmps, 0,
                                 rs1, rs2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisasmRoundTrip,
                         ::testing::Values(1u, 42u, 20150615u));

}  // namespace
}  // namespace nfp::asmkit
