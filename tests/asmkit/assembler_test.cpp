#include "asmkit/assembler.h"

#include <gtest/gtest.h>

#include "isa/decode.h"
#include "isa/encode.h"
#include "sim/iss.h"
#include "sim/memmap.h"

namespace nfp::asmkit {
namespace {

using isa::Op;

std::uint32_t word_at(const Program& p, std::uint32_t addr) {
  const std::uint32_t off = addr - p.base();
  const auto& b = p.bytes();
  return (std::uint32_t{b[off]} << 24) | (std::uint32_t{b[off + 1]} << 16) |
         (std::uint32_t{b[off + 2]} << 8) | b[off + 3];
}

TEST(Assembler, EncodesBasicInstructions) {
  const Program p = assemble(R"(
        add %g1, %g2, %g3
        sub %o0, 1, %o0
        nop
)",
                             0x1000);
  EXPECT_EQ(word_at(p, 0x1000), isa::enc_alu(Op::kAdd, 3, 1, 2));
  EXPECT_EQ(word_at(p, 0x1004), isa::enc_alu_imm(Op::kSub, 8, 8, 1));
  EXPECT_EQ(word_at(p, 0x1008), isa::enc_nop());
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
loop:
        subcc %l0, 1, %l0
        bne loop
        nop
        ba done
        nop
done:
        ta 0
)",
                             0x2000);
  // bne at 0x2004 targets 0x2000 => disp -4.
  const isa::DecodedInsn bne = isa::decode(word_at(p, 0x2004));
  EXPECT_EQ(bne.op, Op::kBicc);
  EXPECT_EQ(bne.imm, -4);
  // ba at 0x200c targets done at 0x2014 => disp 8.
  const isa::DecodedInsn ba = isa::decode(word_at(p, 0x200c));
  EXPECT_EQ(ba.imm, 8);
  EXPECT_EQ(p.symbol("done"), 0x2014u);
}

TEST(Assembler, HiLoAndSet) {
  const Program p = assemble(R"(
        sethi %hi(0x40001234), %g1
        or %g1, %lo(0x40001234), %g1
        set 0x40001234, %g2
)",
                             0);
  const isa::DecodedInsn hi = isa::decode(word_at(p, 0));
  EXPECT_EQ(hi.op, Op::kSethi);
  EXPECT_EQ(static_cast<std::uint32_t>(hi.imm), 0x40001234u & 0xFFFFFC00u);
  const isa::DecodedInsn lo = isa::decode(word_at(p, 4));
  EXPECT_EQ(lo.imm, 0x234);
  const isa::DecodedInsn set_hi = isa::decode(word_at(p, 8));
  EXPECT_EQ(set_hi.op, Op::kSethi);
  const isa::DecodedInsn set_lo = isa::decode(word_at(p, 12));
  EXPECT_EQ(set_lo.op, Op::kOr);
  EXPECT_EQ(set_lo.imm, 0x234);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
        .data
words:  .word 0x11223344, -1
halfs:  .half 0x55AA
bytes:  .byte 1, 2, 3
        .align 8
dbl:    .double 1.5
str:    .asciz "hi\n"
)",
                             0x4000);
  const std::uint32_t w = p.symbol("words");
  EXPECT_EQ(word_at(p, w), 0x11223344u);
  EXPECT_EQ(word_at(p, w + 4), 0xFFFFFFFFu);
  const std::uint32_t d = p.symbol("dbl");
  EXPECT_EQ(d % 8, 0u);
  // 1.5 == 0x3FF8000000000000
  EXPECT_EQ(word_at(p, d), 0x3FF80000u);
  EXPECT_EQ(word_at(p, d + 4), 0u);
  const std::uint32_t s = p.symbol("str");
  EXPECT_EQ(p.bytes()[s - p.base()], 'h');
  EXPECT_EQ(p.bytes()[s - p.base() + 2], '\n');
  EXPECT_EQ(p.bytes()[s - p.base() + 3], 0);
}

TEST(Assembler, DataPlacedAfterText) {
  const Program p = assemble(R"(
        nop
        .data
var:    .word 7
)",
                             0x1000);
  EXPECT_EQ(p.symbol("var"), 0x1008u);  // text 4 bytes, data aligned to 8
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(R"(
        mov 5, %o0
        mov %o0, %o1
        cmp %o0, %o1
        clr %g1
        retl
        nop
)",
                             0);
  EXPECT_EQ(word_at(p, 0), isa::enc_alu_imm(Op::kOr, 8, 0, 5));
  EXPECT_EQ(word_at(p, 4), isa::enc_alu(Op::kOr, 9, 0, 8));
  EXPECT_EQ(word_at(p, 8), isa::enc_alu(Op::kSubcc, 0, 8, 9));
  EXPECT_EQ(word_at(p, 12), isa::enc_alu(Op::kOr, 1, 0, 0));
  EXPECT_EQ(word_at(p, 16), isa::enc_alu_imm(Op::kJmpl, 0, 15, 8));
}

TEST(Assembler, EquAndExpressions) {
  const Program p = assemble(R"(
        .equ BASE, 0x44000000
        set BASE+16, %g1
        ld [%g1+BASE-BASE], %g2
)",
                             0);
  const isa::DecodedInsn lo = isa::decode(word_at(p, 4));
  EXPECT_EQ(lo.imm, 16);
}

TEST(Assembler, CommentsAndLabelsOnSameLine) {
  const Program p = assemble(R"(
start:  nop  ! comment with , and [ chars
        nop  ; another
        nop  # and another
)",
                             0x100);
  EXPECT_EQ(p.symbol("start"), 0x100u);
  EXPECT_EQ(p.size(), 12u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\n  bogus %g1\n", 0);
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, UndefinedSymbolFails) {
  EXPECT_THROW(assemble("call nowhere\n nop\n", 0), AsmError);
}

TEST(Assembler, DuplicateLabelFails) {
  EXPECT_THROW(assemble("a: nop\na: nop\n", 0), AsmError);
}

TEST(Assembler, ImmediateRangeChecked) {
  EXPECT_THROW(assemble("add %g1, 5000, %g1\n", 0), AsmError);
  EXPECT_NO_THROW(assemble("add %g1, 4095, %g1\n", 0));
  EXPECT_NO_THROW(assemble("add %g1, -4096, %g1\n", 0));
}

TEST(Assembler, EntryDefaultsToOriginOrStart) {
  const Program a = assemble("nop\n", 0x1000);
  EXPECT_EQ(a.entry(), 0x1000u);
  const Program b = assemble("nop\n_start: nop\n", 0x1000);
  EXPECT_EQ(b.entry(), 0x1004u);
}

TEST(Assembler, FpuSyntax) {
  const Program p = assemble(R"(
        faddd %f0, %f2, %f4
        fsqrtd %f4, %f6
        fcmpd %f0, %f2
        nop
        fbl somewhere
        nop
somewhere:
        ldf [%sp+4], %f1
        stdf %f4, [%g1]
)",
                             0);
  EXPECT_EQ(word_at(p, 0), isa::enc_fp(Op::kFaddd, 4, 0, 2));
  EXPECT_EQ(word_at(p, 4), isa::enc_fp(Op::kFsqrtd, 6, 0, 4));
  EXPECT_EQ(word_at(p, 8), isa::enc_fp(Op::kFcmpd, 0, 0, 2));
  const isa::DecodedInsn fbl = isa::decode(word_at(p, 16));
  EXPECT_EQ(fbl.op, Op::kFbfcc);
  EXPECT_EQ(fbl.imm, 8);
}

// End-to-end: assemble a program that computes 10! iteratively and run it.
TEST(Assembler, FactorialRunsOnIss) {
  const Program p = assemble(R"(
_start:
        mov 10, %l0        ! n
        mov 1, %l1         ! acc
loop:   cmp %l0, 1
        ble done
        nop
        umul %l1, %l0, %l1
        ba loop
        sub %l0, 1, %l0
done:   mov %l1, %o0
        ta 0
)",
                             nfp::sim::kTextBase);
  nfp::sim::Iss iss;
  iss.load(p);
  const auto result = iss.run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.exit_code, 3628800u);
}

}  // namespace
}  // namespace nfp::asmkit
