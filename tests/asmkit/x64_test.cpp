// Byte-exact golden-encoding tests for the x86-64 emitter.
//
// Every expected byte sequence below was derived by disassembling the
// emitter's output with binutils objdump
// (`objdump -D -b binary -m i386:x86-64`) and checking the mnemonic/operand
// rendering against the intended instruction. The bytes are committed as
// constants so any future encoder change that silently flips an encoding
// (dropped REX, wrong ModRM mode, missing SIB, bad displacement width)
// fails here before it can reach the JIT.
#include "asmkit/x64.h"

#include <cstdint>
#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

namespace {

using nfp::asmkit::x64::Cc;
using nfp::asmkit::x64::Emitter;
using nfp::asmkit::x64::Gp;
using nfp::asmkit::x64::Label;
using nfp::asmkit::x64::ptr;
using nfp::asmkit::x64::ptr_idx;

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  return {v.begin(), v.end()};
}

template <typename Fn>
void expect_encoding(const char* what, Fn&& emit,
                     std::initializer_list<int> expected) {
  Emitter e;
  emit(e);
  EXPECT_EQ(e.bytes(), bytes(expected)) << what;
}

TEST(X64Encoding, MovImmediate) {
  // mov $0x12345678,%ecx
  expect_encoding("mov_ri ecx",
                  [](Emitter& e) { e.mov_ri(Gp::rcx, 0x12345678); },
                  {0xb9, 0x78, 0x56, 0x34, 0x12});
  // mov $0xdeadbeef,%r10d
  expect_encoding("mov_ri r10d",
                  [](Emitter& e) { e.mov_ri(Gp::r10, 0xdeadbeef); },
                  {0x41, 0xba, 0xef, 0xbe, 0xad, 0xde});
  // movabs $0x1122334455667788,%rbx
  expect_encoding(
      "mov_ri64 rbx",
      [](Emitter& e) { e.mov_ri64(Gp::rbx, 0x1122334455667788ull); },
      {0x48, 0xbb, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
  // movabs $0x1122334455667788,%r14
  expect_encoding(
      "mov_ri64 r14",
      [](Emitter& e) { e.mov_ri64(Gp::r14, 0x1122334455667788ull); },
      {0x49, 0xbe, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
}

TEST(X64Encoding, MovRegReg) {
  // mov %edx,%eax (reg<-rm form, 8B)
  expect_encoding("mov_rr eax,edx",
                  [](Emitter& e) { e.mov_rr(Gp::rax, Gp::rdx); },
                  {0x8b, 0xc2});
  // mov %r9d,%eax
  expect_encoding("mov_rr eax,r9d",
                  [](Emitter& e) { e.mov_rr(Gp::rax, Gp::r9); },
                  {0x41, 0x8b, 0xc1});
  // mov %rbx,%r12
  expect_encoding("mov_rr64 r12,rbx",
                  [](Emitter& e) { e.mov_rr64(Gp::r12, Gp::rbx); },
                  {0x4c, 0x8b, 0xe3});
}

TEST(X64Encoding, MovLoad) {
  // mov 0x10(%rbx),%eax — disp8
  expect_encoding("mov_rm [rbx+0x10]",
                  [](Emitter& e) { e.mov_rm(Gp::rax, ptr(Gp::rbx, 0x10)); },
                  {0x8b, 0x43, 0x10});
  // mov -0x4(%r14),%ecx — negative disp8, REX.B
  expect_encoding("mov_rm [r14-4]",
                  [](Emitter& e) { e.mov_rm(Gp::rcx, ptr(Gp::r14, -4)); },
                  {0x41, 0x8b, 0x4e, 0xfc});
  // mov (%r12),%edx — r12 base forces SIB
  expect_encoding("mov_rm [r12]",
                  [](Emitter& e) { e.mov_rm(Gp::rdx, ptr(Gp::r12)); },
                  {0x41, 0x8b, 0x14, 0x24});
  // mov 0x0(%rbp),%eax — rbp base forces disp8=0
  expect_encoding("mov_rm [rbp]",
                  [](Emitter& e) { e.mov_rm(Gp::rax, ptr(Gp::rbp)); },
                  {0x8b, 0x45, 0x00});
  // mov 0x0(%r13),%eax — r13 base forces disp8=0 too
  expect_encoding("mov_rm [r13]",
                  [](Emitter& e) { e.mov_rm(Gp::rax, ptr(Gp::r13)); },
                  {0x41, 0x8b, 0x45, 0x00});
  // mov 0x80(%rbx),%eax — disp32 (0x80 does not fit disp8)
  expect_encoding("mov_rm [rbx+0x80]",
                  [](Emitter& e) { e.mov_rm(Gp::rax, ptr(Gp::rbx, 0x80)); },
                  {0x8b, 0x83, 0x80, 0x00, 0x00, 0x00});
  // mov 0x40(%r14),%rax — 64-bit load
  expect_encoding("mov_rm64 [r14+0x40]",
                  [](Emitter& e) { e.mov_rm64(Gp::rax, ptr(Gp::r14, 0x40)); },
                  {0x49, 0x8b, 0x46, 0x40});
}

TEST(X64Encoding, MovStore) {
  // mov %eax,0x10(%rbx)
  expect_encoding("mov_mr [rbx+0x10],eax",
                  [](Emitter& e) { e.mov_mr(ptr(Gp::rbx, 0x10), Gp::rax); },
                  {0x89, 0x43, 0x10});
  // mov %ecx,(%r12,%rcx,1) — base+index SIB
  expect_encoding(
      "mov_mr [r12+rcx],ecx",
      [](Emitter& e) { e.mov_mr(ptr_idx(Gp::r12, Gp::rcx), Gp::rcx); },
      {0x41, 0x89, 0x0c, 0x0c});
  // mov %rax,0x20(%r14)
  expect_encoding("mov_mr64 [r14+0x20],rax",
                  [](Emitter& e) { e.mov_mr64(ptr(Gp::r14, 0x20), Gp::rax); },
                  {0x49, 0x89, 0x46, 0x20});
  // mov %al,0x8(%rbx)
  expect_encoding("mov_mr8 [rbx+8],al",
                  [](Emitter& e) { e.mov_mr8(ptr(Gp::rbx, 8), Gp::rax); },
                  {0x88, 0x43, 0x08});
  // mov %sil,(%rbx) — needs bare REX to address sil not dh
  expect_encoding("mov_mr8 [rbx],sil",
                  [](Emitter& e) { e.mov_mr8(ptr(Gp::rbx), Gp::rsi); },
                  {0x40, 0x88, 0x33});
  // mov %ax,0x8(%rbx) — 0x66 operand-size prefix
  expect_encoding("mov_mr16 [rbx+8],ax",
                  [](Emitter& e) { e.mov_mr16(ptr(Gp::rbx, 8), Gp::rax); },
                  {0x66, 0x89, 0x43, 0x08});
  // mov %cx,(%r12,%rdx,1) — prefix must precede REX
  expect_encoding(
      "mov_mr16 [r12+rdx],cx",
      [](Emitter& e) { e.mov_mr16(ptr_idx(Gp::r12, Gp::rdx), Gp::rcx); },
      {0x66, 0x41, 0x89, 0x0c, 0x14});
  // movl $0x42,0x18(%rbx)
  expect_encoding("mov_mi [rbx+0x18],0x42",
                  [](Emitter& e) { e.mov_mi(ptr(Gp::rbx, 0x18), 0x42); },
                  {0xc7, 0x43, 0x18, 0x42, 0x00, 0x00, 0x00});
  // movb $0x1,0x3c(%rbx)
  expect_encoding("mov_mi8 [rbx+0x3c],1",
                  [](Emitter& e) { e.mov_mi8(ptr(Gp::rbx, 0x3c), 1); },
                  {0xc6, 0x43, 0x3c, 0x01});
}

TEST(X64Encoding, Extensions) {
  // movzbl 0x3d(%rbx),%eax
  expect_encoding("movzx_rm8",
                  [](Emitter& e) { e.movzx_rm8(Gp::rax, ptr(Gp::rbx, 0x3d)); },
                  {0x0f, 0xb6, 0x43, 0x3d});
  // movzbl (%r12,%rcx,1),%edx
  expect_encoding(
      "movzx_rm8 sib",
      [](Emitter& e) { e.movzx_rm8(Gp::rdx, ptr_idx(Gp::r12, Gp::rcx)); },
      {0x41, 0x0f, 0xb6, 0x14, 0x0c});
  // movzwl 0x2(%r14),%ecx
  expect_encoding("movzx_rm16",
                  [](Emitter& e) { e.movzx_rm16(Gp::rcx, ptr(Gp::r14, 2)); },
                  {0x41, 0x0f, 0xb7, 0x4e, 0x02});
  // movsbl (%r12,%rcx,1),%eax
  expect_encoding(
      "movsx_rm8",
      [](Emitter& e) { e.movsx_rm8(Gp::rax, ptr_idx(Gp::r12, Gp::rcx)); },
      {0x41, 0x0f, 0xbe, 0x04, 0x0c});
  // movswl (%rbx),%ecx
  expect_encoding("movsx_rm16",
                  [](Emitter& e) { e.movsx_rm16(Gp::rcx, ptr(Gp::rbx)); },
                  {0x0f, 0xbf, 0x0b});
  // movsbl %cl,%eax
  expect_encoding("movsx_rr8 cl",
                  [](Emitter& e) { e.movsx_rr8(Gp::rax, Gp::rcx); },
                  {0x0f, 0xbe, 0xc1});
  // movsbl %sil,%eax — forced REX selects sil not dh
  expect_encoding("movsx_rr8 sil",
                  [](Emitter& e) { e.movsx_rr8(Gp::rax, Gp::rsi); },
                  {0x40, 0x0f, 0xbe, 0xc6});
  // movswl %ax,%ecx
  expect_encoding("movsx_rr16",
                  [](Emitter& e) { e.movsx_rr16(Gp::rcx, Gp::rax); },
                  {0x0f, 0xbf, 0xc8});
}

TEST(X64Encoding, AluRegReg) {
  expect_encoding("add", [](Emitter& e) { e.add_rr(Gp::rax, Gp::rdx); },
                  {0x03, 0xc2});
  expect_encoding("or", [](Emitter& e) { e.or_rr(Gp::rax, Gp::r9); },
                  {0x41, 0x0b, 0xc1});
  expect_encoding("adc", [](Emitter& e) { e.adc_rr(Gp::rcx, Gp::rdx); },
                  {0x13, 0xca});
  expect_encoding("sbb", [](Emitter& e) { e.sbb_rr(Gp::rcx, Gp::rdx); },
                  {0x1b, 0xca});
  expect_encoding("and", [](Emitter& e) { e.and_rr(Gp::rax, Gp::rcx); },
                  {0x23, 0xc1});
  expect_encoding("sub", [](Emitter& e) { e.sub_rr(Gp::rax, Gp::rcx); },
                  {0x2b, 0xc1});
  expect_encoding("xor", [](Emitter& e) { e.xor_rr(Gp::rdx, Gp::rdx); },
                  {0x33, 0xd2});
  expect_encoding("cmp", [](Emitter& e) { e.cmp_rr(Gp::rax, Gp::r11); },
                  {0x41, 0x3b, 0xc3});
}

TEST(X64Encoding, AluImmediate) {
  // imm8 sign-extended form (0x83) when the value fits
  expect_encoding("add imm8", [](Emitter& e) { e.add_ri(Gp::rax, 4); },
                  {0x83, 0xc0, 0x04});
  // imm32 form (0x81) otherwise
  expect_encoding("add imm32", [](Emitter& e) { e.add_ri(Gp::rax, 0x1000); },
                  {0x81, 0xc0, 0x00, 0x10, 0x00, 0x00});
  // 0x80 is NOT imm8-safe (sign-extends to -128)
  expect_encoding("or imm32", [](Emitter& e) { e.or_ri(Gp::rcx, 0x80); },
                  {0x81, 0xc9, 0x80, 0x00, 0x00, 0x00});
  expect_encoding("adc 0", [](Emitter& e) { e.adc_ri(Gp::rax, 0); },
                  {0x83, 0xd0, 0x00});
  expect_encoding("sbb 0", [](Emitter& e) { e.sbb_ri(Gp::rax, 0); },
                  {0x83, 0xd8, 0x00});
  expect_encoding("and 0x1f", [](Emitter& e) { e.and_ri(Gp::rax, 0x1f); },
                  {0x83, 0xe0, 0x1f});
  expect_encoding("sub 8", [](Emitter& e) { e.sub_ri(Gp::rsp, 8); },
                  {0x83, 0xec, 0x08});
  // 0xffffffff == -1 fits imm8
  expect_encoding("xor -1", [](Emitter& e) { e.xor_ri(Gp::rax, 0xffffffff); },
                  {0x83, 0xf0, 0xff});
  expect_encoding("cmp 3", [](Emitter& e) { e.cmp_ri(Gp::rcx, 3); },
                  {0x83, 0xf9, 0x03});
  expect_encoding("cmp r8 imm32",
                  [](Emitter& e) { e.cmp_ri(Gp::r8, 0x01000000); },
                  {0x41, 0x81, 0xf8, 0x00, 0x00, 0x00, 0x01});
}

TEST(X64Encoding, Alu64) {
  // add $-5,%r13 (sign-extended imm8)
  expect_encoding("add_ri64 -5", [](Emitter& e) { e.add_ri64(Gp::r13, -5); },
                  {0x49, 0x83, 0xc5, 0xfb});
  expect_encoding("sub_ri64 1", [](Emitter& e) { e.sub_ri64(Gp::r13, 1); },
                  {0x49, 0x83, 0xed, 0x01});
  expect_encoding("cmp_ri64 0x100",
                  [](Emitter& e) { e.cmp_ri64(Gp::r13, 0x100); },
                  {0x49, 0x81, 0xfd, 0x00, 0x01, 0x00, 0x00});
  // addq $0x7,0x148(%rbx) — the instret batch update shape
  expect_encoding("add_mi64 imm8",
                  [](Emitter& e) { e.add_mi64(ptr(Gp::rbx, 0x148), 7); },
                  {0x48, 0x83, 0x83, 0x48, 0x01, 0x00, 0x00, 0x07});
  expect_encoding(
      "add_mi64 imm32",
      [](Emitter& e) { e.add_mi64(ptr(Gp::rbx, 0x148), 0x200); },
      {0x48, 0x81, 0x83, 0x48, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00});
  // add %rcx,(%rax,%rdx,1) — the per-op retire counter shape
  expect_encoding(
      "add_mr64",
      [](Emitter& e) { e.add_mr64(ptr_idx(Gp::rax, Gp::rdx), Gp::rcx); },
      {0x48, 0x01, 0x0c, 0x10});
  expect_encoding("add_rm",
                  [](Emitter& e) { e.add_rm(Gp::rax, ptr(Gp::rbx, 4)); },
                  {0x03, 0x43, 0x04});
}

TEST(X64Encoding, CmpMem) {
  // cmp 0x4(%rbx),%eax
  expect_encoding("cmp_rm disp8",
                  [](Emitter& e) { e.cmp_rm(Gp::rax, ptr(Gp::rbx, 4)); },
                  {0x3b, 0x43, 0x04});
  // cmp (%rdx,%rax,1),%ecx — the inline-BTC tag probe shape
  expect_encoding(
      "cmp_rm sib",
      [](Emitter& e) { e.cmp_rm(Gp::rcx, ptr_idx(Gp::rdx, Gp::rax)); },
      {0x3b, 0x0c, 0x02});
  // cmp 0x40(%r14),%rax — the residual-buffer capacity check shape
  expect_encoding("cmp_rm64 [r14+0x40]",
                  [](Emitter& e) { e.cmp_rm64(Gp::rax, ptr(Gp::r14, 0x40)); },
                  {0x49, 0x3b, 0x46, 0x40});
  // cmp 0x8(%rax,%rdx,1),%rcx
  expect_encoding(
      "cmp_rm64 sib",
      [](Emitter& e) { e.cmp_rm64(Gp::rcx, ptr_idx(Gp::rax, Gp::rdx, 8)); },
      {0x48, 0x3b, 0x4c, 0x10, 0x08});
}

TEST(X64Encoding, ByteAlu) {
  // or 0x3e(%rbx),%al
  expect_encoding("or_rm8",
                  [](Emitter& e) { e.or_rm8(Gp::rax, ptr(Gp::rbx, 0x3e)); },
                  {0x0a, 0x43, 0x3e});
  // xor 0x3f(%rbx),%cl
  expect_encoding("xor_rm8",
                  [](Emitter& e) { e.xor_rm8(Gp::rcx, ptr(Gp::rbx, 0x3f)); },
                  {0x32, 0x4b, 0x3f});
}

TEST(X64Encoding, TestAndUnary) {
  expect_encoding("test_rr", [](Emitter& e) { e.test_rr(Gp::rax, Gp::rax); },
                  {0x85, 0xc0});
  expect_encoding("test_rr64",
                  [](Emitter& e) { e.test_rr64(Gp::r13, Gp::r13); },
                  {0x4d, 0x85, 0xed});
  expect_encoding("test_ri",
                  [](Emitter& e) { e.test_ri(Gp::rcx, 0x80000000u); },
                  {0xf7, 0xc1, 0x00, 0x00, 0x00, 0x80});
  expect_encoding("not", [](Emitter& e) { e.not_r(Gp::rax); }, {0xf7, 0xd0});
  expect_encoding("neg", [](Emitter& e) { e.neg_r(Gp::rcx); }, {0xf7, 0xd9});
  expect_encoding("mul", [](Emitter& e) { e.mul_r(Gp::rcx); }, {0xf7, 0xe1});
  expect_encoding("imul", [](Emitter& e) { e.imul_r(Gp::rcx); }, {0xf7, 0xe9});
  expect_encoding("imul_rr", [](Emitter& e) { e.imul_rr(Gp::rax, Gp::rdx); },
                  {0x0f, 0xaf, 0xc2});
}

TEST(X64Encoding, Shifts) {
  expect_encoding("shl imm", [](Emitter& e) { e.shl_ri(Gp::rax, 10); },
                  {0xc1, 0xe0, 0x0a});
  expect_encoding("shr imm", [](Emitter& e) { e.shr_ri(Gp::rdx, 0x14); },
                  {0xc1, 0xea, 0x14});
  expect_encoding("sar imm", [](Emitter& e) { e.sar_ri(Gp::rax, 0x1f); },
                  {0xc1, 0xf8, 0x1f});
  expect_encoding("shl cl", [](Emitter& e) { e.shl_cl(Gp::rax); },
                  {0xd3, 0xe0});
  expect_encoding("shr cl", [](Emitter& e) { e.shr_cl(Gp::rdx); },
                  {0xd3, 0xea});
  expect_encoding("sar cl r8d", [](Emitter& e) { e.sar_cl(Gp::r8); },
                  {0x41, 0xd3, 0xf8});
}

TEST(X64Encoding, Misc) {
  expect_encoding("bswap eax", [](Emitter& e) { e.bswap_r(Gp::rax); },
                  {0x0f, 0xc8});
  expect_encoding("bswap r9d", [](Emitter& e) { e.bswap_r(Gp::r9); },
                  {0x41, 0x0f, 0xc9});
  // ror $0x8,%ax — the big-endian halfword swap
  expect_encoding("ror16", [](Emitter& e) { e.ror16_ri(Gp::rax, 8); },
                  {0x66, 0xc1, 0xc8, 0x08});
  expect_encoding("bt imm", [](Emitter& e) { e.bt_ri(Gp::rcx, 0); },
                  {0x0f, 0xba, 0xe1, 0x00});
  expect_encoding("bt reg", [](Emitter& e) { e.bt_rr(Gp::rax, Gp::rcx); },
                  {0x0f, 0xa3, 0xc8});
  expect_encoding("seto al", [](Emitter& e) { e.setcc_r(Cc::kO, Gp::rax); },
                  {0x0f, 0x90, 0xc0});
  // setb %sil — forced REX, else this would encode dh
  expect_encoding("setb sil", [](Emitter& e) { e.setcc_r(Cc::kB, Gp::rsi); },
                  {0x40, 0x0f, 0x92, 0xc6});
  expect_encoding("sete mem",
                  [](Emitter& e) { e.setcc_m(Cc::kE, ptr(Gp::rbx, 0x3d)); },
                  {0x0f, 0x94, 0x43, 0x3d});
  // lea -0x40000000(%rcx),%edx — the RAM-bias address check shape
  expect_encoding(
      "lea bias",
      [](Emitter& e) { e.lea_r32(Gp::rdx, ptr(Gp::rcx, -0x40000000)); },
      {0x8d, 0x91, 0x00, 0x00, 0x00, 0xc0});
  expect_encoding(
      "lea sib",
      [](Emitter& e) { e.lea_r32(Gp::rax, ptr_idx(Gp::r12, Gp::rcx, 4)); },
      {0x41, 0x8d, 0x44, 0x0c, 0x04});
}

TEST(X64Encoding, Control) {
  expect_encoding("call rax", [](Emitter& e) { e.call_r(Gp::rax); },
                  {0xff, 0xd0});
  expect_encoding("call r10", [](Emitter& e) { e.call_r(Gp::r10); },
                  {0x41, 0xff, 0xd2});
  // jmp *0x8(%rdx) — FF /4 indirect through memory
  expect_encoding("jmp_m disp8",
                  [](Emitter& e) { e.jmp_m(ptr(Gp::rdx, 8)); },
                  {0xff, 0x62, 0x08});
  // jmp *0x8(%rdx,%rax,1) — the inline-BTC dispatch shape
  expect_encoding(
      "jmp_m sib",
      [](Emitter& e) { e.jmp_m(ptr_idx(Gp::rdx, Gp::rax, 8)); },
      {0xff, 0x64, 0x02, 0x08});
  // jmp *0x8(%r14) — REX.B for high base
  expect_encoding("jmp_m r14",
                  [](Emitter& e) { e.jmp_m(ptr(Gp::r14, 8)); },
                  {0x41, 0xff, 0x66, 0x08});
  expect_encoding("push rbx", [](Emitter& e) { e.push_r(Gp::rbx); }, {0x53});
  expect_encoding("push r15", [](Emitter& e) { e.push_r(Gp::r15); },
                  {0x41, 0x57});
  expect_encoding("pop r15", [](Emitter& e) { e.pop_r(Gp::r15); },
                  {0x41, 0x5f});
  expect_encoding("pop rbx", [](Emitter& e) { e.pop_r(Gp::rbx); }, {0x5b});
  expect_encoding("ret", [](Emitter& e) { e.ret(); }, {0xc3});
  expect_encoding("int3", [](Emitter& e) { e.int3(); }, {0xcc});
}

TEST(X64Encoding, LabelsBackward) {
  // 0: xor %eax,%eax ; 2: add $1,%eax ; 5: jmp 2 → rel32 = 2-(6+4) = -8
  Emitter e;
  e.xor_rr(Gp::rax, Gp::rax);
  Label top;
  e.bind(top);
  e.add_ri(Gp::rax, 1);
  e.jmp(top);
  EXPECT_EQ(e.bytes(), bytes({0x33, 0xc0, 0x83, 0xc0, 0x01, 0xe9, 0xf8, 0xff,
                              0xff, 0xff}));
}

TEST(X64Encoding, LabelsForward) {
  // 0: test %eax,%eax ; 2: jz +N ; 8: xor %eax,%eax ; 10(bound): ret
  Emitter e;
  Label skip;
  e.test_rr(Gp::rax, Gp::rax);
  e.jcc(Cc::kE, skip);
  EXPECT_FALSE(skip.bound());
  e.xor_rr(Gp::rax, Gp::rax);
  e.bind(skip);
  EXPECT_TRUE(skip.bound());
  e.ret();
  // jz rel32: target 10, ref ends at 8 → rel = 2
  EXPECT_EQ(e.bytes(), bytes({0x85, 0xc0, 0x0f, 0x84, 0x02, 0x00, 0x00, 0x00,
                              0x33, 0xc0, 0xc3}));
}

TEST(X64Encoding, JmpPatchable) {
  // Emits jmp rel32 with rel 0 (falls through) and reports the rel32 offset.
  Emitter e;
  e.ret();
  const std::uint32_t site = e.jmp_patchable();
  EXPECT_EQ(site, 2u);  // ret(1) + E9 opcode(1)
  e.int3();
  EXPECT_EQ(e.bytes(), bytes({0xc3, 0xe9, 0x00, 0x00, 0x00, 0x00, 0xcc}));
}

TEST(X64Encoding, MultipleForwardRefsOneLabel) {
  Emitter e;
  Label out;
  e.jcc(Cc::kB, out);   // 0..5, ref at 2
  e.jcc(Cc::kAe, out);  // 6..11, ref at 8
  e.jmp(out);           // 12..16, ref at 13
  e.bind(out);          // bound at 17
  e.ret();
  EXPECT_EQ(e.bytes(),
            bytes({0x0f, 0x82, 0x0b, 0x00, 0x00, 0x00,    // jb  +11
                   0x0f, 0x83, 0x05, 0x00, 0x00, 0x00,    // jae +5
                   0xe9, 0x00, 0x00, 0x00, 0x00,          // jmp +0
                   0xc3}));
}

}  // namespace
