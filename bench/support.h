// Shared machinery for the paper-reproduction benches: calibrate the NFP
// model on the board, run kernel campaigns, and tabulate estimated vs
// measured energy/time (Eq. 1-3).
#pragma once

#include <string>
#include <vector>

#include "board/config.h"
#include "nfp/calibration.h"
#include "nfp/campaign.h"
#include "nfp/error.h"
#include "nfp/estimator.h"
#include "nfp/report.h"
#include "nfp/scheme.h"

namespace nfp::benchkit {

struct KernelEval {
  std::string name;
  bool ok = false;
  std::string error;
  std::uint64_t instret = 0;
  model::Estimate estimated;
  double measured_energy_nj = 0.0;
  double measured_time_s = 0.0;
};

struct EvalResult {
  std::vector<KernelEval> kernels;
  model::ErrorStats energy;
  model::ErrorStats time;
};

// Calibrates per-category costs on a fresh board with `cfg` (Table I/II).
model::CalibrationResult calibrate(
    const board::BoardConfig& cfg,
    const model::CategoryScheme& scheme = model::CategoryScheme::paper(),
    model::CalibrationPlan plan = {});

// Runs all jobs on ISS + board, applies the estimator, and computes Eq. 3
// error statistics over the successful kernels.
EvalResult evaluate(const std::vector<model::KernelJob>& jobs,
                    const board::BoardConfig& cfg,
                    const model::CategoryScheme& scheme,
                    const model::CategoryCosts& costs);

// Applies one estimation scheme (nfp/estimator.h) to already-run campaign
// records — so one campaign can be scored under several schemes — and
// computes the same Eq. 3 statistics.
EvalResult evaluate_records(const std::vector<model::KernelRunRecord>& records,
                            const model::Estimator& estimator,
                            const model::CategoryCosts& costs);

// Convenience: mean estimate over kernels (used by the Table IV bench).
model::Estimate mean_estimate(const std::vector<KernelEval>& kernels);

void print_eval_table(const std::string& title, const EvalResult& result);

}  // namespace nfp::benchkit
