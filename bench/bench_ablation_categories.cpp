// Ablation: category granularity vs estimation accuracy. Quantifies the
// cost of the paper's nine-category lumping (e.g. umul/udiv folded into
// "Integer Arithmetic") by evaluating a coarser (6) and a finer (13)
// scheme on the same kernels.
#include <cstdio>

#include "support.h"
#include "workloads/kernels.h"

int main() {
  std::printf("== Ablation: category scheme granularity ==\n\n");
  nfp::board::BoardConfig cfg;

  nfp::workloads::MvcKernelParams mvc;
  mvc.qps = {32};
  nfp::workloads::FseKernelParams fse;
  fse.count = 8;

  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    for (auto& j : nfp::workloads::make_mvc_jobs(abi, mvc)) jobs.push_back(std::move(j));
    for (auto& j : nfp::workloads::make_fse_jobs(abi, fse)) jobs.push_back(std::move(j));
  }
  std::printf("kernel set: %zu kernels\n\n", jobs.size());

  nfp::model::TextTable table({"Scheme", "categories", "mean |eps_E|",
                               "max |eps_E|", "mean |eps_T|", "max |eps_T|"});
  for (const auto* scheme :
       {&nfp::model::CategoryScheme::coarse(),
        &nfp::model::CategoryScheme::paper(),
        &nfp::model::CategoryScheme::fine()}) {
    const auto calibration = nfp::benchkit::calibrate(cfg, *scheme);
    const auto result =
        nfp::benchkit::evaluate(jobs, cfg, *scheme, calibration.costs);
    table.add_row(
        {scheme->name(), std::to_string(scheme->size()),
         nfp::model::TextTable::fmt(result.energy.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.energy.max_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.max_abs_percent()) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(expected: finer categories reduce lumping error; the "
              "paper's 9 categories sit near the knee)\n");
  return 0;
}
