// Extension bench: full processor-configuration exploration. The paper's
// abstract promises help with "the optimal processor hardware configuration
// for a given algorithm"; Table IV explores one axis (the FPU). This bench
// spans the 2x2 LEON3 option space {FPU, hardware MUL/DIV} for all three
// workloads, entirely from NFP-model estimates (no board measurements).
#include <cstdio>

#include "board/area.h"
#include "support.h"
#include "workloads/kernels.h"

namespace {

struct CpuConfig {
  const char* name;
  bool fpu;
  bool muldiv;
};

// Estimated mean energy/time per workload on a given CPU configuration.
struct WorkloadCost {
  double energy_nj = 0.0;
  double time_s = 0.0;
};

}  // namespace

int main() {
  std::printf("== Extension: processor configuration space (FPU x MUL/DIV) "
              "==\n\n");

  const CpuConfig configs[] = {
      {"minimal IU", false, false},
      {"IU + MUL/DIV", false, true},
      {"IU + FPU", true, false},
      {"IU + MUL/DIV + FPU", true, true},
  };
  const auto& scheme = nfp::model::CategoryScheme::paper();
  const nfp::board::AreaModel area;

  // Small, representative kernel subsets (the minimal-IU FSE kernels run
  // soft-float on a soft multiplier — enormous instruction counts).
  nfp::workloads::MvcKernelParams mvc;
  mvc.qps = {32};
  mvc.frames = 3;
  nfp::workloads::FseKernelParams fse;
  fse.count = 2;
  fse.iterations = 16;
  nfp::workloads::SobelKernelParams sobel;
  sobel.count = 2;

  nfp::model::TextTable table({"CPU configuration", "LEs", "HEVC E [mJ]",
                               "HEVC T [ms]", "FSE E [mJ]", "FSE T [ms]",
                               "Sobel E [mJ]", "Sobel T [ms]"});

  for (const auto& config : configs) {
    nfp::board::BoardConfig cfg;
    cfg.has_fpu = config.fpu;
    cfg.has_hw_muldiv = config.muldiv;
    const auto calibration = nfp::benchkit::calibrate(cfg);

    const auto float_abi = config.fpu ? nfp::mcc::FloatAbi::kHard
                                      : nfp::mcc::FloatAbi::kSoft;
    const auto muldiv_abi = config.muldiv ? nfp::mcc::MulDivAbi::kHard
                                          : nfp::mcc::MulDivAbi::kSoft;

    const auto cost_of = [&](const std::vector<nfp::model::KernelJob>& jobs) {
      const auto result =
          nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);
      for (const auto& k : result.kernels) {
        if (!k.ok) {
          std::fprintf(stderr, "kernel %s failed: %s\n", k.name.c_str(),
                       k.error.c_str());
        }
      }
      const auto mean = nfp::benchkit::mean_estimate(result.kernels);
      return WorkloadCost{mean.energy_nj, mean.time_s};
    };

    const auto hevc = cost_of(
        nfp::workloads::make_mvc_jobs(float_abi, mvc, muldiv_abi));
    const auto fse_cost = cost_of(
        nfp::workloads::make_fse_jobs(float_abi, fse, muldiv_abi));
    const auto sobel_cost = cost_of(
        nfp::workloads::make_sobel_jobs(float_abi, sobel, muldiv_abi));

    table.add_row({config.name,
                   std::to_string(area.synthesize(cfg).total()),
                   nfp::model::TextTable::fmt(hevc.energy_nj * 1e-6, 1),
                   nfp::model::TextTable::fmt(hevc.time_s * 1e3, 1),
                   nfp::model::TextTable::fmt(fse_cost.energy_nj * 1e-6, 1),
                   nfp::model::TextTable::fmt(fse_cost.time_s * 1e3, 1),
                   nfp::model::TextTable::fmt(sobel_cost.energy_nj * 1e-6, 1),
                   nfp::model::TextTable::fmt(sobel_cost.time_s * 1e3, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\n(reading: FSE wants the FPU, HEVC wants MUL/DIV and mildly "
      "benefits from the FPU, Sobel only needs MUL/DIV — per-algorithm "
      "optimal configurations differ, which is the tool's purpose)\n");
  return 0;
}
