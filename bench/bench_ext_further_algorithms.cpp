// Extension bench (paper §VII future work): "evaluate the estimation
// accuracy of this model for further algorithms". Applies the model —
// calibrated once, with no algorithm-specific tuning — to Sobel edge
// detection, a pure-integer stencil workload unseen during any tuning,
// and also answers the FPU design question for it.
#include <cstdio>

#include "nfp/dse.h"
#include "support.h"
#include "workloads/kernels.h"

int main() {
  std::printf("== Extension: model generality on a further algorithm "
              "(Sobel) ==\n\n");
  nfp::board::BoardConfig cfg;
  const auto& scheme = nfp::model::CategoryScheme::paper();
  const auto calibration = nfp::benchkit::calibrate(cfg);

  nfp::workloads::SobelKernelParams params;
  params.count = 6;

  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    for (auto& j : nfp::workloads::make_sobel_jobs(abi, params)) {
      jobs.push_back(std::move(j));
    }
  }
  const auto result =
      nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);
  nfp::benchkit::print_eval_table("Sobel kernels, estimated vs measured:",
                                  result);

  // FPU design question for a pure-integer algorithm.
  std::vector<nfp::model::Estimate> with_fpu, soft;
  for (const auto& k : result.kernels) {
    if (!k.ok) continue;
    if (k.name.find("/float") != std::string::npos) {
      with_fpu.push_back(k.estimated);
    } else {
      soft.push_back(k.estimated);
    }
  }
  const auto impact = nfp::model::fpu_impact("Sobel", with_fpu, soft);
  std::printf("FPU impact on Sobel: energy %+.2f%%, time %+.2f%% at +%.0f%% "
              "area => the model correctly advises against an FPU here.\n",
              impact.energy_change_percent, impact.time_change_percent,
              impact.area_change_percent);
  return 0;
}
