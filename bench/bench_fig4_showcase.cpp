// Reproduces Fig. 4: measured vs estimated energy and time for four
// representative kernels — FSE and HEVC decoding, each as float (FPU) and
// fixed (-msoft-float). Printed as the bar-chart's data series.
#include <cstdio>

#include "support.h"
#include "workloads/kernels.h"

int main() {
  nfp::board::BoardConfig cfg;
  const auto& scheme = nfp::model::CategoryScheme::paper();
  std::printf("== Fig. 4: measured vs estimated energy/time, 4 showcase "
              "kernels ==\n");
  const auto calibration = nfp::benchkit::calibrate(cfg);

  // The two FSE kernels process the same input (image 0); the two HEVC
  // kernels decode the same bitstream (lowdelay, QP 32, sequence 0).
  nfp::workloads::FseKernelParams fse;
  fse.count = 1;
  nfp::workloads::MvcKernelParams mvc;
  mvc.qps = {32};

  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    jobs.push_back(nfp::workloads::make_fse_jobs(abi, fse)[0]);
    // lowdelay qp32 seq0 is job index 3 (configs ordered intra, lowdelay,
    // lowdelay_P, randomaccess; one qp, three sequences).
    jobs.push_back(nfp::workloads::make_mvc_jobs(abi, mvc)[3]);
  }

  const auto result =
      nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);

  nfp::model::TextTable table({"Kernel", "E measured [mJ]", "E estimated [mJ]",
                               "T measured [ms]", "T estimated [ms]"});
  for (const auto& k : result.kernels) {
    if (!k.ok) {
      std::printf("FAILED %s: %s\n", k.name.c_str(), k.error.c_str());
      continue;
    }
    table.add_row({k.name,
                   nfp::model::TextTable::fmt(k.measured_energy_nj * 1e-6, 3),
                   nfp::model::TextTable::fmt(k.estimated.energy_nj * 1e-6, 3),
                   nfp::model::TextTable::fmt(k.measured_time_s * 1e3, 3),
                   nfp::model::TextTable::fmt(k.estimated.time_s * 1e3, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper shape: all estimated bars within a few percent of "
              "the measured bars; fixed >> float for FSE, moderately larger "
              "for HEVC)\n");
  std::printf("mean |eps|: energy %.2f%%, time %.2f%%\n",
              result.energy.mean_abs_percent(),
              result.time.mean_abs_percent());
  return 0;
}
