// Google-benchmark microbenchmarks for the simulator fidelity levels
// (feeds the speed axis of Fig. 1 with statistically robust numbers).
#include <benchmark/benchmark.h>

#include <string>

#include "board/board.h"
#include "mcc/compiler.h"
#include "sim/iss.h"
#include "sim/jit.h"

// Build provenance, stamped per entry: an unoptimized simulator makes every
// MIPS number meaningless for before/after comparisons.
#ifndef NFP_BUILD_TYPE
#define NFP_BUILD_TYPE "unknown"
#endif

namespace {

void set_provenance(benchmark::State& state, const char* dispatch) {
  state.SetLabel(std::string("dispatch=") + dispatch +
                 " build=" NFP_BUILD_TYPE);
}

// Dispatch-speed workload: the mix() call keeps blocks short and makes
// block-to-block transitions (call, conditional branch, jmpl return through
// the branch-target cache) a large share of retired instructions — the very
// cost the dispatch modes differ on. Straight-line-only loops under-report
// dispatch overhead because one morphed block amortizes it over dozens of
// instructions.
const nfp::asmkit::Program& loop_program() {
  static const nfp::asmkit::Program program = nfp::mcc::Compiler().compile({R"(
unsigned mix(unsigned acc, unsigned v) {
  acc = acc * 1664525u + 1013904223u;
  return acc ^ v;
}
int main() {
  unsigned acc = 1;
  int data[64];
  for (int i = 0; i < 64; i++) data[i] = i * 3;
  for (int i = 0; i < 40000; i++) {
    acc = mix(acc, (unsigned)data[i & 63]);
    acc = mix(acc, acc >> 3);
    data[i & 63] = (int)(acc >> 16);
  }
  return (int)(acc & 0xFF);
}
)"});
  return program;
}

// `make` builds the simulator, `go` runs the loaded simulator to completion
// and returns its RunResult (the indirection lets callers pick a dispatch
// mode).
template <typename Make, typename Go>
void run_sim(benchmark::State& state, Make&& make, Go&& go) {
  std::uint64_t insns = 0;
  for (auto _ : state) {
    auto sim = make();
    sim.load(loop_program());
    const auto result = go(sim);
    if (!result.halted) state.SkipWithError("did not halt");
    insns += result.instret;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(insns) * 1e-6, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
}

constexpr std::uint64_t kBudget = 1'000'000'000ull;

// Step / block-unchained / block-chained A/B triples for the two
// batch-capable fidelity levels (the superblock morph cache and chaining
// speedups reported in docs/block_cache.md).
void BM_FunctionalSim(benchmark::State& state) {
  set_provenance(state, "block-chained");
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void BM_FunctionalSim_Unchained(benchmark::State& state) {
  set_provenance(state, "block-unchained");
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) {
        return sim.run(kBudget, nfp::sim::Dispatch::kBlockUnchained);
      });
}
BENCHMARK(BM_FunctionalSim_Unchained)->Unit(benchmark::kMillisecond);

void BM_FunctionalSim_Step(benchmark::State& state) {
  set_provenance(state, "step");
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_FunctionalSim_Step)->Unit(benchmark::kMillisecond);

// The x86-64 template-JIT tier (Dispatch::kJit). On hosts where the jit
// cannot run this silently measures chained-block dispatch instead — the
// label still says jit, but such a bench box is outside the snapshot's
// provenance anyway.
void BM_FunctionalSim_Jit(benchmark::State& state) {
  set_provenance(state, "jit");
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kJit); });
}
BENCHMARK(BM_FunctionalSim_Jit)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters(benchmark::State& state) {
  set_provenance(state, "block-chained");
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_IssWithCounters)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters_Unchained(benchmark::State& state) {
  set_provenance(state, "block-unchained");
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) {
        return sim.run(kBudget, nfp::sim::Dispatch::kBlockUnchained);
      });
}
BENCHMARK(BM_IssWithCounters_Unchained)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters_Step(benchmark::State& state) {
  set_provenance(state, "step");
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_IssWithCounters_Step)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters_Jit(benchmark::State& state) {
  set_provenance(state, "jit");
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kJit); });
}
BENCHMARK(BM_IssWithCounters_Jit)->Unit(benchmark::kMillisecond);

// Inline-vs-host BTC A/B pair on the call-dense workload (every mix() call
// returns through a register-indirect jmpl): with the inline BTC the retl's
// emitted probe chains straight into the return block; without it every
// return re-enters the host loop, resolves through the interpreter's BTC,
// and calls back into emitted code.
void BM_FunctionalSim_Jit_InlineBtc(benchmark::State& state) {
  set_provenance(state, "jit-inline-btc");
  nfp::sim::jit_set_inline_btc(true);
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kJit); });
}
BENCHMARK(BM_FunctionalSim_Jit_InlineBtc)->Unit(benchmark::kMillisecond);

void BM_FunctionalSim_Jit_HostBtc(benchmark::State& state) {
  set_provenance(state, "jit-host-btc");
  nfp::sim::jit_set_inline_btc(false);
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kJit); });
  nfp::sim::jit_set_inline_btc(true);
}
BENCHMARK(BM_FunctionalSim_Jit_HostBtc)->Unit(benchmark::kMillisecond);

// Board step-vs-block A/B pair: the block-cost dispatch (static per-block
// profiles + dynamic residual hooks) against the per-instruction stepping
// baseline, at identical — bit-for-bit — cycle and energy accounting.
void BM_BoardApproxTimed(benchmark::State& state) {
  set_provenance(state, "block-chained");
  run_sim(
      state, [] { return nfp::board::Board(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_BoardApproxTimed)->Unit(benchmark::kMillisecond);

void BM_BoardApproxTimed_Step(benchmark::State& state) {
  set_provenance(state, "step");
  run_sim(
      state, [] { return nfp::board::Board(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_BoardApproxTimed_Step)->Unit(benchmark::kMillisecond);

// Board cost tier on the jit: static base cycles retire inline in emitted
// code, dynamic residuals are captured and replayed in batch — accounting
// stays bit-for-bit identical to both rows above.
void BM_BoardApproxTimed_Jit(benchmark::State& state) {
  set_provenance(state, "jit");
  run_sim(
      state, [] { return nfp::board::Board(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kJit); });
}
BENCHMARK(BM_BoardApproxTimed_Jit)->Unit(benchmark::kMillisecond);

void BM_BoardCycleStepped(benchmark::State& state) {
  set_provenance(state, "block-chained");
  run_sim(
      state,
      [] {
        nfp::board::BoardConfig cfg;
        cfg.fidelity = nfp::board::Fidelity::kCycleStepped;
        return nfp::board::Board(cfg);
      },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_BoardCycleStepped)->Unit(benchmark::kMillisecond);

void BM_BoardCycleStepped_Step(benchmark::State& state) {
  set_provenance(state, "step");
  run_sim(
      state,
      [] {
        nfp::board::BoardConfig cfg;
        cfg.fidelity = nfp::board::Fidelity::kCycleStepped;
        return nfp::board::Board(cfg);
      },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_BoardCycleStepped_Step)->Unit(benchmark::kMillisecond);

void BM_Compile(benchmark::State& state) {
  const auto abi = state.range(0) == 0 ? nfp::mcc::FloatAbi::kHard
                                       : nfp::mcc::FloatAbi::kSoft;
  const std::string source = R"(
double filter(double* data, int n) {
  double acc = 0.0;
  for (int i = 1; i + 1 < n; i++) {
    acc += (data[i - 1] + 2.0 * data[i] + data[i + 1]) * 0.25;
  }
  return acc / (double)n;
}
double buf[128];
int main() {
  for (int i = 0; i < 128; i++) buf[i] = (double)(i * 7 % 31);
  return (int)filter(buf, 128);
}
)";
  for (auto _ : state) {
    nfp::mcc::CompileOptions opts;
    opts.float_abi = abi;
    benchmark::DoNotOptimize(nfp::mcc::Compiler(opts).compile({source}));
  }
}
BENCHMARK(BM_Compile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("nfp_build_type", NFP_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
