// Google-benchmark microbenchmarks for the simulator fidelity levels
// (feeds the speed axis of Fig. 1 with statistically robust numbers).
#include <benchmark/benchmark.h>

#include "board/board.h"
#include "mcc/compiler.h"
#include "sim/iss.h"

namespace {

const nfp::asmkit::Program& loop_program() {
  static const nfp::asmkit::Program program = nfp::mcc::Compiler().compile({R"(
int main() {
  unsigned acc = 1;
  int data[64];
  for (int i = 0; i < 64; i++) data[i] = i * 3;
  for (int i = 0; i < 40000; i++) {
    acc = acc * 1664525u + 1013904223u;
    acc ^= (unsigned)data[i & 63];
    data[i & 63] = (int)(acc >> 16);
  }
  return (int)(acc & 0xFF);
}
)"});
  return program;
}

// `make` builds the simulator, `go` runs the loaded simulator to completion
// and returns its RunResult (this indirection lets callers pick a dispatch
// mode; Board has no dispatch parameter).
template <typename Make, typename Go>
void run_sim(benchmark::State& state, Make&& make, Go&& go) {
  std::uint64_t insns = 0;
  for (auto _ : state) {
    auto sim = make();
    sim.load(loop_program());
    const auto result = go(sim);
    if (!result.halted) state.SkipWithError("did not halt");
    insns += result.instret;
  }
  state.counters["MIPS"] = benchmark::Counter(
      static_cast<double>(insns) * 1e-6, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(insns));
}

constexpr std::uint64_t kBudget = 1'000'000'000ull;

// Step vs block dispatch A/B pairs for the two batch-capable fidelity
// levels (the superblock morph cache speedup reported in docs/block_cache.md).
void BM_FunctionalSim(benchmark::State& state) {
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void BM_FunctionalSim_Step(benchmark::State& state) {
  run_sim(
      state, [] { return nfp::sim::FunctionalSim(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_FunctionalSim_Step)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters(benchmark::State& state) {
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_IssWithCounters)->Unit(benchmark::kMillisecond);

void BM_IssWithCounters_Step(benchmark::State& state) {
  run_sim(
      state, [] { return nfp::sim::Iss(); },
      [](auto& sim) { return sim.run(kBudget, nfp::sim::Dispatch::kStep); });
}
BENCHMARK(BM_IssWithCounters_Step)->Unit(benchmark::kMillisecond);

void BM_BoardApproxTimed(benchmark::State& state) {
  run_sim(
      state, [] { return nfp::board::Board(); },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_BoardApproxTimed)->Unit(benchmark::kMillisecond);

void BM_BoardCycleStepped(benchmark::State& state) {
  run_sim(
      state,
      [] {
        nfp::board::BoardConfig cfg;
        cfg.fidelity = nfp::board::Fidelity::kCycleStepped;
        return nfp::board::Board(cfg);
      },
      [](auto& sim) { return sim.run(kBudget); });
}
BENCHMARK(BM_BoardCycleStepped)->Unit(benchmark::kMillisecond);

void BM_Compile(benchmark::State& state) {
  const auto abi = state.range(0) == 0 ? nfp::mcc::FloatAbi::kHard
                                       : nfp::mcc::FloatAbi::kSoft;
  const std::string source = R"(
double filter(double* data, int n) {
  double acc = 0.0;
  for (int i = 1; i + 1 < n; i++) {
    acc += (data[i - 1] + 2.0 * data[i] + data[i + 1]) * 0.25;
  }
  return acc / (double)n;
}
double buf[128];
int main() {
  for (int i = 0; i < 128; i++) buf[i] = (double)(i * 7 % 31);
  return (int)filter(buf, 128);
}
)";
  for (auto _ : state) {
    nfp::mcc::CompileOptions opts;
    opts.float_abi = abi;
    benchmark::DoNotOptimize(nfp::mcc::Compiler(opts).compile({source}));
  }
}
BENCHMARK(BM_Compile)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
