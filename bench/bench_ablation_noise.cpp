// Ablation: sensitivity of the Table III errors to the board's
// context-dependent energy variation and the power-meter noise — i.e.,
// which physical mechanism produces the paper's 2-3% error floor.
#include <cstdio>

#include "support.h"
#include "workloads/kernels.h"

int main() {
  std::printf("== Ablation: data-dependence and meter-noise sensitivity ==\n\n");

  nfp::workloads::MvcKernelParams mvc;
  mvc.qps = {32};
  nfp::workloads::FseKernelParams fse;
  fse.count = 6;
  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    for (auto& j : nfp::workloads::make_mvc_jobs(abi, mvc)) jobs.push_back(std::move(j));
    for (auto& j : nfp::workloads::make_fse_jobs(abi, fse)) jobs.push_back(std::move(j));
  }

  struct Point {
    const char* name;
    double amplitude;
    bool meter_noise;
    double sigma;
  };
  const Point points[] = {
      {"no data dependence, ideal meter", 0.0, false, 0.0},
      {"no data dependence, noisy meter", 0.0, true, 0.004},
      {"mild data dependence (amp 0.15)", 0.15, true, 0.004},
      {"default board (amp 0.30)", 0.30, true, 0.004},
      {"strong data dependence (amp 0.45)", 0.45, true, 0.004},
      {"default hardware, bad meter (sigma 1%)", 0.30, true, 0.01},
  };

  const auto& scheme = nfp::model::CategoryScheme::paper();
  nfp::model::TextTable table({"Board configuration", "mean |eps_E|",
                               "max |eps_E|", "mean |eps_T|", "max |eps_T|"});
  for (const auto& point : points) {
    nfp::board::BoardConfig cfg;
    cfg.data_energy_amplitude = point.amplitude;
    cfg.enable_variation = true;
    cfg.enable_meter_noise = point.meter_noise;
    cfg.meter_noise_sigma = point.sigma;
    const auto calibration = nfp::benchkit::calibrate(cfg, scheme);
    const auto result =
        nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);
    table.add_row(
        {point.name,
         nfp::model::TextTable::fmt(result.energy.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.energy.max_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.max_abs_percent()) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(expected: with an ideal board the mechanistic model is "
              "near-exact; error grows with operand-dependent energy "
              "variation, the effect the constant-cost assumption ignores)\n");
  return 0;
}
