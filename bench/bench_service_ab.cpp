// Service-vs-batch A/B on the paper's full 120-kernel campaign (Sec. VI):
// the sharded, preempting CampaignService must reproduce the batch Campaign
// loop bit-for-bit (cycles and energy per kernel) at every worker count —
// while showing the wall-clock scaling the service tier exists for. Any
// per-kernel mismatch is reported and exits nonzero, so this doubles as the
// full-scale acceptance check behind tests/nfp/service_test.cpp's reduced
// kernel set.
#include <bit>
#include <chrono>
#include <cstdio>
#include <vector>

#include "nfp/campaign.h"
#include "nfp/service.h"
#include "workloads/kernels.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace nfp;

  std::vector<model::KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi)) jobs.push_back(std::move(j));
    for (auto& j : workloads::make_fse_jobs(abi)) jobs.push_back(std::move(j));
  }
  std::printf("campaign: %zu kernels (MVC + FSE, both ABIs)\n", jobs.size());

  const board::BoardConfig board_cfg;
  const auto t_batch = std::chrono::steady_clock::now();
  const auto batch = model::Campaign(board_cfg, 4).run(jobs);
  const double batch_s = seconds_since(t_batch);
  std::printf("batch Campaign (4 threads): %.2f s\n", batch_s);

  int mismatches = 0;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    model::ServiceConfig cfg;
    cfg.board = board_cfg;
    cfg.workers = workers;
    cfg.calibrate = false;
    model::CampaignService service(cfg);
    std::vector<model::ServiceJob> sjobs;
    for (const auto& j : jobs) {
      model::ServiceJob sj;
      sj.name = j.name;
      sj.program = j.program;
      sj.inputs = j.inputs;
      sj.slice_insns = 2'000'000;  // real preemption traffic, not a no-op
      sjobs.push_back(std::move(sj));
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto got = service.run_jobs(std::move(sjobs));
    const double secs = seconds_since(t0);
    const auto stats = service.stats();

    int bad = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto& g = got[i].record;
      const auto& w = batch[i];
      const bool same =
          g.ok && w.ok && g.instret == w.instret && g.cycles == w.cycles &&
          std::bit_cast<std::uint64_t>(g.true_energy_nj) ==
              std::bit_cast<std::uint64_t>(w.true_energy_nj) &&
          std::bit_cast<std::uint64_t>(g.measured.energy_nj) ==
              std::bit_cast<std::uint64_t>(w.measured.energy_nj) &&
          std::bit_cast<std::uint64_t>(g.measured.time_s) ==
              std::bit_cast<std::uint64_t>(w.measured.time_s);
      if (!same) {
        ++bad;
        std::printf("  MISMATCH %s (%s)\n", g.name.c_str(),
                    g.ok ? "values differ" : g.error.c_str());
      }
    }
    mismatches += bad;
    std::printf(
        "service %u worker(s): %.2f s (%.2fx batch), %llu checkpoint(s) "
        "(%llu bytes), %llu steal(s), %d mismatch(es)\n",
        workers, secs, secs > 0 ? batch_s / secs : 0.0,
        static_cast<unsigned long long>(stats.checkpoints),
        static_cast<unsigned long long>(stats.checkpoint_bytes),
        static_cast<unsigned long long>(stats.steals), bad);
  }

  if (mismatches != 0) {
    std::printf("FAIL: %d record(s) diverged from the batch loop\n",
                mismatches);
    return 1;
  }
  std::printf("OK: every worker count bit-identical to the batch loop\n");
  return 0;
}
