// Cross-scheme estimation accuracy over the paper's 120-kernel campaign:
// the Eq. 1 per-category model (eq1) vs the PMU event-counter model
// (events) vs the processing-time proxy (time-proxy), each calibrated on
// the same Table-II runs and scored with the same Eq. 3 ε̄/ε_max, per
// workload group (hevc/fse × float/fixed) and overall.
//
// Hard invariants (violations print the kernel and exit nonzero):
//   - behavior preservation: the eq1 scheme's per-kernel estimate is
//     bit-identical to the legacy model::estimate(counts, paper, costs)
//     pipeline — the refactor must not move a single ulp;
//   - every scheme produces finite error statistics over the campaign.
//
// The whole table is persisted as BENCH_scheme_accuracy.json (repo-root
// convention, like BENCH_static_triangle.json) for trend tracking.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nfp/campaign.h"
#include "support.h"
#include "workloads/kernels.h"

namespace {

using namespace nfp;

struct GroupStats {
  std::string group;
  std::size_t kernels = 0;
  model::ErrorStats energy;
  model::ErrorStats time;
};

std::string group_of(const std::string& name) {
  const std::string workload = name.substr(0, name.find('/'));
  const bool fixed = name.find("/fixed") != std::string::npos;
  return workload + "-" + (fixed ? "fixed" : "float");
}

// Eq. 3 stats for the records whose group matches (empty = all).
GroupStats group_stats(const std::vector<model::KernelRunRecord>& records,
                       const benchkit::EvalResult& eval,
                       const std::string& group) {
  GroupStats g;
  g.group = group.empty() ? "all" : group;
  std::vector<double> est_e, meas_e, est_t, meas_t;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& k = eval.kernels[i];
    if (!k.ok) continue;
    if (!group.empty() && group_of(k.name) != group) continue;
    ++g.kernels;
    est_e.push_back(k.estimated.energy_nj);
    meas_e.push_back(k.measured_energy_nj);
    est_t.push_back(k.estimated.time_s);
    meas_t.push_back(k.measured_time_s);
  }
  g.energy = model::error_stats(est_e, meas_e);
  g.time = model::error_stats(est_t, meas_t);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  workloads::MvcKernelParams mvc;
  workloads::FseKernelParams fse;
  if (quick) {
    mvc.qps = {32};
    mvc.frames = 3;
    fse.count = 6;
    fse.iterations = 24;
  }
  std::vector<model::KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi, mvc)) {
      jobs.push_back(std::move(j));
    }
    for (auto& j : workloads::make_fse_jobs(abi, fse)) {
      jobs.push_back(std::move(j));
    }
  }

  const board::BoardConfig cfg;
  std::printf("== cross-scheme accuracy: %zu kernels, %zu schemes ==\n",
              jobs.size(), model::all_estimators().size());

  // One calibration per scheme, all on the same Table-II runs; one campaign,
  // scored under every scheme.
  const model::Calibrator calibrator;
  std::vector<model::SchemeCalibration> calibrations;
  for (const model::Estimator* est : model::all_estimators()) {
    std::printf("calibrating scheme %-10s (%zu terms)...\n",
                std::string(est->name()).c_str(), est->terms());
    calibrations.push_back(calibrator.fit(*est, cfg));
  }
  std::printf("running the campaign...\n");
  const auto records = model::Campaign(cfg, 4).run(jobs);

  int violations = 0;
  for (const auto& rec : records) {
    if (!rec.ok) {
      std::printf("  DYNAMIC FAILURE %s: %s\n", rec.name.c_str(),
                  rec.error.c_str());
      ++violations;
    }
  }

  std::vector<std::string> groups;
  for (const auto& rec : records) {
    const std::string g = group_of(rec.name);
    bool seen = false;
    for (const auto& have : groups) seen = seen || have == g;
    if (!seen) groups.push_back(g);
  }

  std::FILE* json = std::fopen("BENCH_scheme_accuracy.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"kernels\":%zu,\"schemes\":[", jobs.size());
  }

  const auto& eq1_costs = calibrations[0].costs;
  bool first_scheme = true;
  for (std::size_t s = 0; s < calibrations.size(); ++s) {
    const model::Estimator& est = *model::all_estimators()[s];
    const auto& calib = calibrations[s];
    const auto eval = benchkit::evaluate_records(records, est, calib.costs);

    // Behavior preservation: eq1 through the scheme interface must equal
    // the legacy pipeline bit for bit, kernel by kernel.
    if (est.name() == "eq1") {
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (!records[i].ok) continue;
        const auto legacy = model::estimate(
            records[i].counts, model::CategoryScheme::paper(), eq1_costs);
        if (legacy.energy_nj != eval.kernels[i].estimated.energy_nj ||
            legacy.time_s != eval.kernels[i].estimated.time_s) {
          std::printf("  EQ1 DIVERGENCE %s: scheme (%.17g nJ, %.17g s) vs "
                      "legacy (%.17g nJ, %.17g s)\n",
                      records[i].name.c_str(),
                      eval.kernels[i].estimated.energy_nj,
                      eval.kernels[i].estimated.time_s, legacy.energy_nj,
                      legacy.time_s);
          ++violations;
        }
      }
    }

    std::printf("\nscheme %s (%zu terms, %zu calibration samples):\n",
                std::string(est.name()).c_str(), est.terms(), calib.samples);
    model::TextTable table(
        {"Group", "n", "eps_E mean", "eps_E max", "eps_T mean", "eps_T max"});
    std::vector<GroupStats> rows;
    for (const auto& g : groups) rows.push_back(group_stats(records, eval, g));
    rows.push_back(group_stats(records, eval, ""));
    for (const auto& g : rows) {
      if (!g.energy.ok || !g.time.ok) {
        std::printf("  NO STATS for group %s (%s)\n", g.group.c_str(),
                    g.energy.refusal.c_str());
        ++violations;
        continue;
      }
      if (!std::isfinite(g.energy.mean_abs) || !std::isfinite(g.time.mean_abs)) {
        std::printf("  NON-FINITE STATS for group %s\n", g.group.c_str());
        ++violations;
        continue;
      }
      table.add_row(
          {g.group, std::to_string(g.kernels),
           model::TextTable::fmt(g.energy.mean_abs_percent()) + "%",
           model::TextTable::fmt(g.energy.max_abs_percent()) + "%",
           model::TextTable::fmt(g.time.mean_abs_percent()) + "%",
           model::TextTable::fmt(g.time.max_abs_percent()) + "%"});
    }
    std::printf("%s", table.to_string().c_str());

    if (json != nullptr) {
      std::fprintf(json, "%s{\"scheme\":\"%s\",\"terms\":%zu,\"samples\":%zu,"
                   "\"groups\":[",
                   first_scheme ? "" : ",",
                   std::string(est.name()).c_str(), est.terms(),
                   calib.samples);
      first_scheme = false;
      bool first_group = true;
      for (const auto& g : rows) {
        std::fprintf(
            json,
            "%s{\"group\":\"%s\",\"kernels\":%zu,"
            "\"energy\":{\"mean_abs\":%.17g,\"max_abs\":%.17g},"
            "\"time\":{\"mean_abs\":%.17g,\"max_abs\":%.17g}}",
            first_group ? "" : ",", g.group.c_str(), g.kernels,
            g.energy.mean_abs, g.energy.max_abs, g.time.mean_abs,
            g.time.max_abs);
        first_group = false;
      }
      std::fputs("]}", json);
    }
  }
  if (json != nullptr) {
    std::fputs("]}\n", json);
    std::fclose(json);
    std::printf("\nwrote BENCH_scheme_accuracy.json\n");
  }

  if (violations > 0) {
    std::printf("FAIL: %d violation(s)\n", violations);
    return 1;
  }
  std::printf("PASS: eq1 bit-identical to the legacy pipeline, all schemes "
              "scored\n");
  return 0;
}
