// Three-way accuracy triangle on the paper's 120-kernel campaign (Sec. VI):
// execution-free IPET static interval vs ISS estimate (Eq. 1) vs board
// ground truth, per kernel and aggregated.
//
// Hard invariants (any violation prints the kernel and exits nonzero):
//   - containment: the board ground truth (instret, cycles, energy, time)
//     lies inside the static [lower, upper] for every accepted kernel;
//   - coverage: at least 80 of the 120 kernels are accepted by the static
//     estimator (counted-loop inference first, profile-derived absolute
//     totals as the fallback for data-dependent loops);
//   - dominance: the IPET lower bound is >= the Dijkstra shortest-path
//     lower bound on every accepted kernel (both are sound, IPET must not
//     be weaker).
//
// Tightness (how much the interval overshoots reality) is reported as
// eps = bound/truth - 1 per metric, aggregated as mean and max, and the
// whole table is persisted as BENCH_static_triangle.json for trend
// tracking across commits.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/bounds.h"
#include "analyze/cfg.h"
#include "analyze/ipet.h"
#include "analyze/profile.h"
#include "nfp/campaign.h"
#include "support.h"
#include "workloads/kernels.h"

namespace {

using namespace nfp;

struct TriangleRow {
  std::string name;
  bool accepted = false;
  std::string refusal;      // slug when !accepted
  bool used_profile = false;  // needed the absolute-total fallback
  analyze::IpetResult ipet;
  // Board ground truth.
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  double energy_nj = 0.0;
  double time_s = 0.0;
  // ISS estimate (Eq. 1) from the calibrated table.
  model::Estimate estimate;
  // Dijkstra lower bounds (bounds.cpp) for the dominance check.
  double dij_cycles = 0.0;
  double dij_energy_nj = 0.0;
};

struct Tightness {
  double sum = 0.0;
  double max = 0.0;
  std::size_t n = 0;
  void add(double eps) {
    sum += eps;
    max = std::max(max, eps);
    ++n;
  }
  double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

// Relative slack for double-summed energy/time comparisons: both sides
// accumulate hundreds of thousands of doubles in different orders.
constexpr double kRelSlack = 1e-9;

bool inside(double truth, double lower, double upper) {
  const double slack = kRelSlack * std::max(1.0, std::abs(truth));
  return truth >= lower - slack && truth <= upper + slack;
}

}  // namespace

int main() {
  std::vector<model::KernelJob> jobs;
  for (const auto abi : {mcc::FloatAbi::kHard, mcc::FloatAbi::kSoft}) {
    for (auto& j : workloads::make_mvc_jobs(abi)) jobs.push_back(std::move(j));
    for (auto& j : workloads::make_fse_jobs(abi)) jobs.push_back(std::move(j));
  }
  std::printf("campaign: %zu kernels (MVC + FSE, both ABIs)\n", jobs.size());

  const board::BoardConfig board_cfg;
  const board::CostModel costs;

  // Leg 1+2 of the triangle: board ground truth and the Eq. 1 estimate.
  const auto calibration = benchkit::calibrate(board_cfg);
  const auto records = model::Campaign(board_cfg, 4).run(jobs);

  // Leg 3: the execution-free static interval. Inference first; kernels
  // with data-dependent (image-driven) loops fall back to absolute header
  // totals from one profiled reference run.
  std::vector<TriangleRow> rows(jobs.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t accepted = 0, profiled = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    TriangleRow& row = rows[i];
    row.name = jobs[i].name;
    const analyze::Cfg cfg = analyze::build_cfg(jobs[i].program);
    analyze::IpetConfig icfg;
    row.ipet = analyze::analyze_ipet(cfg, costs, icfg);
    if (!row.ipet.accepted &&
        (row.ipet.refusal == analyze::IpetRefusal::kUnboundedLoop)) {
      const analyze::PcProfile prof =
          analyze::profile_pcs(jobs[i].program, jobs[i].inputs);
      if (prof.halted) {
        icfg.loop_totals = analyze::block_totals(cfg, prof);
        row.ipet = analyze::analyze_ipet(cfg, costs, icfg);
        row.used_profile = true;
      }
    }
    row.accepted = row.ipet.accepted;
    if (row.accepted) {
      ++accepted;
      if (row.used_profile) ++profiled;
      const analyze::BoundsResult dij = analyze::analyze_bounds(cfg, costs);
      row.dij_cycles = static_cast<double>(dij.lower.cycles);
      row.dij_energy_nj = dij.lower_energy_nj;
    } else {
      row.refusal = analyze::to_string(row.ipet.refusal);
    }
  }
  const double static_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto& scheme = model::CategoryScheme::paper();
  int violations = 0;
  std::size_t estimate_inside = 0;
  Tightness up_cycles, up_energy, lo_cycles, lo_energy;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    TriangleRow& row = rows[i];
    const auto& rec = records[i];
    if (!rec.ok) {
      std::printf("  DYNAMIC FAILURE %s: %s\n", rec.name.c_str(),
                  rec.error.c_str());
      ++violations;
      continue;
    }
    row.instret = rec.instret;
    row.cycles = rec.cycles;
    row.energy_nj = rec.true_energy_nj;
    row.time_s = rec.true_time_s;
    row.estimate = model::estimate(rec.counts, scheme, calibration.costs);
    if (!row.accepted) continue;

    const auto& p = row.ipet;
    const double truth_insns = static_cast<double>(row.instret);
    const double truth_cycles = static_cast<double>(row.cycles);
    if (!inside(truth_insns, p.insns.lower, p.insns.upper) ||
        !inside(truth_cycles, p.cycles.lower, p.cycles.upper) ||
        !inside(row.energy_nj, p.energy_nj.lower, p.energy_nj.upper) ||
        !inside(row.time_s, p.time_s.lower, p.time_s.upper)) {
      std::printf(
          "  CONTAINMENT VIOLATION %s: truth insns %llu cycles %llu "
          "energy %.6g time %.6g vs insns [%g, %g] cycles [%g, %g] "
          "energy [%g, %g] time [%g, %g]\n",
          row.name.c_str(), static_cast<unsigned long long>(row.instret),
          static_cast<unsigned long long>(row.cycles), row.energy_nj,
          row.time_s, p.insns.lower, p.insns.upper, p.cycles.lower,
          p.cycles.upper, p.energy_nj.lower, p.energy_nj.upper,
          p.time_s.lower, p.time_s.upper);
      ++violations;
    }
    if (p.cycles.lower < row.dij_cycles - kRelSlack * row.dij_cycles ||
        p.energy_nj.lower <
            row.dij_energy_nj - kRelSlack * row.dij_energy_nj) {
      std::printf("  DOMINANCE VIOLATION %s: ipet lower (%g cyc, %g nJ) "
                  "below dijkstra (%g cyc, %g nJ)\n",
                  row.name.c_str(), p.cycles.lower, p.energy_nj.lower,
                  row.dij_cycles, row.dij_energy_nj);
      ++violations;
    }
    if (truth_cycles > 0.0) {
      up_cycles.add(p.cycles.upper / truth_cycles - 1.0);
      lo_cycles.add(1.0 - p.cycles.lower / truth_cycles);
    }
    if (row.energy_nj > 0.0) {
      up_energy.add(p.energy_nj.upper / row.energy_nj - 1.0);
      lo_energy.add(1.0 - p.energy_nj.lower / row.energy_nj);
    }
    if (inside(row.estimate.energy_nj, p.energy_nj.lower, p.energy_nj.upper) &&
        inside(row.estimate.time_s, p.time_s.lower, p.time_s.upper)) {
      ++estimate_inside;
    }
  }

  std::printf(
      "static estimator: %zu/%zu accepted (%zu via profile totals), "
      "%zu refused, %.2f s total (%.1f ms/kernel)\n",
      accepted, rows.size(), profiled, rows.size() - accepted, static_s,
      1e3 * static_s / static_cast<double>(rows.size()));
  for (const auto& row : rows) {
    if (!row.accepted) {
      std::printf("  refused %-28s %s\n", row.name.c_str(),
                  row.refusal.c_str());
    }
  }
  std::printf("tightness (accepted kernels, eps = bound/truth - 1):\n");
  std::printf("  cycles upper: mean %.3f max %.3f   lower: mean %.3f max "
              "%.3f\n",
              up_cycles.mean(), up_cycles.max, lo_cycles.mean(),
              lo_cycles.max);
  std::printf("  energy upper: mean %.3f max %.3f   lower: mean %.3f max "
              "%.3f\n",
              up_energy.mean(), up_energy.max, lo_energy.mean(),
              lo_energy.max);
  std::printf("ISS estimate inside the static interval: %zu/%zu\n",
              estimate_inside, accepted);

  // Persist the triangle for trend tracking (same repo-root convention as
  // BENCH_simspeed.json).
  if (std::FILE* f = std::fopen("BENCH_static_triangle.json", "w")) {
    std::fprintf(f,
                 "{\"kernels\":%zu,\"accepted\":%zu,\"profiled\":%zu,"
                 "\"violations\":%d,\"estimate_inside\":%zu,"
                 "\"static_seconds\":%.6g,"
                 "\"eps\":{"
                 "\"cycles_upper\":{\"mean\":%.6g,\"max\":%.6g},"
                 "\"cycles_lower\":{\"mean\":%.6g,\"max\":%.6g},"
                 "\"energy_upper\":{\"mean\":%.6g,\"max\":%.6g},"
                 "\"energy_lower\":{\"mean\":%.6g,\"max\":%.6g}},"
                 "\"rows\":[",
                 rows.size(), accepted, profiled, violations, estimate_inside,
                 static_s, up_cycles.mean(), up_cycles.max, lo_cycles.mean(),
                 lo_cycles.max, up_energy.mean(), up_energy.max,
                 lo_energy.mean(), lo_energy.max);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      std::fprintf(f, "%s{\"name\":\"%s\",\"accepted\":%s",
                   i == 0 ? "" : ",", row.name.c_str(),
                   row.accepted ? "true" : "false");
      if (row.accepted) {
        std::fprintf(
            f,
            ",\"profiled\":%s,\"truth\":{\"insns\":%llu,\"cycles\":%llu,"
            "\"energy_nj\":%.17g,\"time_s\":%.17g},"
            "\"static\":{\"insns\":[%.17g,%.17g],\"cycles\":[%.17g,%.17g],"
            "\"energy_nj\":[%.17g,%.17g],\"time_s\":[%.17g,%.17g]},"
            "\"estimate\":{\"energy_nj\":%.17g,\"time_s\":%.17g}",
            row.used_profile ? "true" : "false",
            static_cast<unsigned long long>(row.instret),
            static_cast<unsigned long long>(row.cycles), row.energy_nj,
            row.time_s, row.ipet.insns.lower, row.ipet.insns.upper,
            row.ipet.cycles.lower, row.ipet.cycles.upper,
            row.ipet.energy_nj.lower, row.ipet.energy_nj.upper,
            row.ipet.time_s.lower, row.ipet.time_s.upper,
            row.estimate.energy_nj, row.estimate.time_s);
      } else {
        std::fprintf(f, ",\"refusal\":\"%s\"", row.refusal.c_str());
      }
      std::fputs("}", f);
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    std::printf("wrote BENCH_static_triangle.json\n");
  }

  if (accepted < 80) {
    std::printf("FAIL: only %zu/%zu kernels accepted (need >= 80)\n",
                accepted, rows.size());
    return 1;
  }
  if (violations > 0) {
    std::printf("FAIL: %d hard-invariant violation(s)\n", violations);
    return 1;
  }
  std::printf("PASS: ground truth inside every accepted interval, "
              "ipet lower >= dijkstra lower everywhere\n");
  return 0;
}
