// Extension bench: using the NFP model to evaluate a *software* design
// choice — the mcc peephole optimiser — before any hardware exists. The
// estimator prices each removed/folded instruction in nanojoules and
// nanoseconds, which is exactly the developer workflow the paper proposes
// (here applied to compiler flags instead of CPU options).
#include <cstdio>

#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "nfp/report.h"
#include "rtlib/sources.h"
#include "sim/iss.h"
#include "support.h"
#include "workloads/kernels.h"

namespace nfp::rtlib {
extern const std::string_view kFseSource;
extern const std::string_view kSobelSource;
}  // namespace nfp::rtlib

namespace {

struct Variant {
  std::uint64_t instret = 0;
  nfp::model::Estimate est;
};

Variant run_program(const nfp::asmkit::Program& program,
                    const std::vector<std::uint8_t>& input,
                    const nfp::model::CategoryCosts& costs) {
  nfp::sim::Iss iss;
  iss.load(program);
  if (!input.empty()) {
    iss.bus().write_block(nfp::sim::kInputBase, input.data(), input.size());
  }
  const auto run = iss.run();
  Variant v;
  v.instret = run.instret;
  v.est = nfp::model::estimate(iss.counters().counts,
                               nfp::model::CategoryScheme::paper(), costs);
  return v;
}

}  // namespace

int main() {
  std::printf("== Extension: pricing the peephole optimiser with the NFP "
              "model ==\n\n");
  nfp::board::BoardConfig cfg;
  const auto calibration = nfp::benchkit::calibrate(cfg);

  // Sobel and FSE targets with one representative input each.
  const auto sobel_image = nfp::workloads::sobel_kernel_image(0);
  std::vector<std::uint8_t> sobel_input;
  sobel_input.reserve(12 + sobel_image.size());
  const auto be32 = [&](std::uint32_t v) {
    sobel_input.push_back(static_cast<std::uint8_t>(v >> 24));
    sobel_input.push_back(static_cast<std::uint8_t>(v >> 16));
    sobel_input.push_back(static_cast<std::uint8_t>(v >> 8));
    sobel_input.push_back(static_cast<std::uint8_t>(v));
  };
  be32(0x534F4231u);
  be32(48);
  be32(48);
  sobel_input.insert(sobel_input.end(), sobel_image.begin(),
                     sobel_image.end());

  const auto fse_data = nfp::workloads::fse_kernel_data(0);
  const auto fse_input =
      nfp::workloads::fse_input_blob(fse_data.signal, fse_data.mask, 24, 0.9);

  nfp::model::TextTable table({"Workload", "insns -O0", "insns peephole",
                               "E saved", "T saved"});
  struct Row {
    const char* name;
    const std::string_view source;
    const std::vector<std::uint8_t>* input;
  };
  // Re-compile the embedded workload sources with/without the optimiser.
  namespace rt = nfp::rtlib;
  const Row rows[] = {
      {"Sobel", rt::kSobelSource, &sobel_input},
      {"FSE (float)", rt::kFseSource, &fse_input},
  };
  for (const Row& row : rows) {
    nfp::mcc::CompileOptions plain;
    nfp::mcc::CompileOptions optimised;
    optimised.peephole = true;
    const auto prog_plain =
        nfp::mcc::Compiler(plain).compile({std::string(row.source)});
    const auto prog_opt =
        nfp::mcc::Compiler(optimised).compile({std::string(row.source)});
    const auto base = run_program(prog_plain, *row.input, calibration.costs);
    const auto opt = run_program(prog_opt, *row.input, calibration.costs);
    table.add_row(
        {row.name, std::to_string(base.instret), std::to_string(opt.instret),
         nfp::model::TextTable::percent(
             (opt.est.energy_nj - base.est.energy_nj) / base.est.energy_nj *
             100.0),
         nfp::model::TextTable::percent(
             (opt.est.time_s - base.est.time_s) / base.est.time_s * 100.0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(the developer quantifies a compiler change in nJ/ns on the "
              "virtual platform — no board, no power meter)\n");
  return 0;
}
