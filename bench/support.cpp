#include "support.h"

#include <cstdio>

namespace nfp::benchkit {

model::CalibrationResult calibrate(const board::BoardConfig& cfg,
                                   const model::CategoryScheme& scheme,
                                   model::CalibrationPlan plan) {
  model::Calibrator calibrator(scheme, plan);
  return calibrator.run(cfg);
}

EvalResult evaluate(const std::vector<model::KernelJob>& jobs,
                    const board::BoardConfig& cfg,
                    const model::CategoryScheme& scheme,
                    const model::CategoryCosts& costs) {
  model::Campaign campaign(cfg);
  const auto records = campaign.run(jobs);

  EvalResult result;
  std::vector<double> est_e, meas_e, est_t, meas_t;
  for (const auto& rec : records) {
    KernelEval eval;
    eval.name = rec.name;
    eval.ok = rec.ok;
    eval.error = rec.error;
    eval.instret = rec.instret;
    if (rec.ok) {
      eval.estimated = model::estimate(rec.counts, scheme, costs);
      eval.measured_energy_nj = rec.measured.energy_nj;
      eval.measured_time_s = rec.measured.time_s;
      est_e.push_back(eval.estimated.energy_nj);
      meas_e.push_back(eval.measured_energy_nj);
      est_t.push_back(eval.estimated.time_s);
      meas_t.push_back(eval.measured_time_s);
    }
    result.kernels.push_back(std::move(eval));
  }
  if (!est_e.empty()) {
    result.energy = model::error_stats(est_e, meas_e);
    result.time = model::error_stats(est_t, meas_t);
  }
  return result;
}

EvalResult evaluate_records(const std::vector<model::KernelRunRecord>& records,
                            const model::Estimator& estimator,
                            const model::CategoryCosts& costs) {
  EvalResult result;
  std::vector<double> est_e, meas_e, est_t, meas_t;
  for (const auto& rec : records) {
    KernelEval eval;
    eval.name = rec.name;
    eval.ok = rec.ok;
    eval.error = rec.error;
    eval.instret = rec.instret;
    if (rec.ok) {
      eval.estimated = estimator.estimate(model::run_sample(rec), costs);
      eval.measured_energy_nj = rec.measured.energy_nj;
      eval.measured_time_s = rec.measured.time_s;
      est_e.push_back(eval.estimated.energy_nj);
      meas_e.push_back(eval.measured_energy_nj);
      est_t.push_back(eval.estimated.time_s);
      meas_t.push_back(eval.measured_time_s);
    }
    result.kernels.push_back(std::move(eval));
  }
  if (!est_e.empty()) {
    result.energy = model::error_stats(est_e, meas_e);
    result.time = model::error_stats(est_t, meas_t);
  }
  return result;
}

model::Estimate mean_estimate(const std::vector<KernelEval>& kernels) {
  model::Estimate mean;
  std::size_t count = 0;
  for (const auto& k : kernels) {
    if (!k.ok) continue;
    mean.energy_nj += k.estimated.energy_nj;
    mean.time_s += k.estimated.time_s;
    ++count;
  }
  if (count > 0) {
    mean.energy_nj /= static_cast<double>(count);
    mean.time_s /= static_cast<double>(count);
  }
  return mean;
}

void print_eval_table(const std::string& title, const EvalResult& result) {
  std::printf("%s\n", title.c_str());
  model::TextTable t({"Kernel", "E_meas [mJ]", "E_est [mJ]", "eps_E",
                      "T_meas [ms]", "T_est [ms]", "eps_T"});
  for (const auto& k : result.kernels) {
    if (!k.ok) {
      t.add_row({k.name, "FAILED: " + k.error});
      continue;
    }
    const double eps_e =
        (k.estimated.energy_nj - k.measured_energy_nj) / k.measured_energy_nj;
    const double eps_t =
        (k.estimated.time_s - k.measured_time_s) / k.measured_time_s;
    t.add_row({k.name, model::TextTable::fmt(k.measured_energy_nj * 1e-6, 3),
               model::TextTable::fmt(k.estimated.energy_nj * 1e-6, 3),
               model::TextTable::percent(eps_e * 100.0),
               model::TextTable::fmt(k.measured_time_s * 1e3, 3),
               model::TextTable::fmt(k.estimated.time_s * 1e3, 3),
               model::TextTable::percent(eps_t * 100.0)});
  }
  std::printf("%s", t.to_string().c_str());
  if (!result.energy.per_kernel.empty()) {
    std::printf("mean |eps|: energy %.2f%%  time %.2f%%   max |eps|: energy "
                "%.2f%%  time %.2f%%\n\n",
                result.energy.mean_abs_percent(),
                result.time.mean_abs_percent(),
                result.energy.max_abs_percent(),
                result.time.max_abs_percent());
  }
}

}  // namespace nfp::benchkit
