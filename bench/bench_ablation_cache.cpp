// Ablation: the paper's future-work item — caches. Enabling the board's
// data cache under a cacheless-calibrated model produces wildly wrong
// estimates (the constant-cost-per-load assumption prices every load as an
// SDRAM access). Recalibrating on the cached board restores accuracy *for
// these workloads* because, as the paper notes, its algorithms have "a very
// high locality such that cache misses play a minor role" — their hit rates
// match the calibration kernels'. Workloads with workload-dependent miss
// rates would need the cache-aware model of the paper's future work.
#include <cstdio>

#include "support.h"
#include "workloads/kernels.h"

int main() {
  std::printf("== Ablation: cache model (paper future work) ==\n\n");

  nfp::workloads::MvcKernelParams mvc;
  mvc.qps = {32};
  nfp::workloads::FseKernelParams fse;
  fse.count = 6;
  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    for (auto& j : nfp::workloads::make_mvc_jobs(abi, mvc)) jobs.push_back(std::move(j));
    for (auto& j : nfp::workloads::make_fse_jobs(abi, fse)) jobs.push_back(std::move(j));
  }

  nfp::board::BoardConfig plain;
  nfp::board::BoardConfig cached;
  cached.enable_cache = true;

  const auto& scheme = nfp::model::CategoryScheme::paper();
  const auto cal_plain = nfp::benchkit::calibrate(plain, scheme);
  const auto cal_cached = nfp::benchkit::calibrate(cached, scheme);

  struct Row {
    const char* name;
    const nfp::board::BoardConfig* board;
    const nfp::model::CategoryCosts* costs;
  };
  const Row rows[] = {
      {"cacheless board, cacheless calibration (paper setup)", &plain,
       &cal_plain.costs},
      {"cached board, cacheless calibration", &cached, &cal_plain.costs},
      {"cached board, cached calibration", &cached, &cal_cached.costs},
  };

  nfp::model::TextTable table({"Configuration", "mean |eps_E|", "max |eps_E|",
                               "mean |eps_T|", "max |eps_T|"});
  for (const auto& row : rows) {
    const auto result =
        nfp::benchkit::evaluate(jobs, *row.board, scheme, *row.costs);
    table.add_row(
        {row.name,
         nfp::model::TextTable::fmt(result.energy.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.energy.max_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.mean_abs_percent()) + "%",
         nfp::model::TextTable::fmt(result.time.max_abs_percent()) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(expected: the mismatched configuration is off by >100%%; "
              "recalibration recovers accuracy only because these workloads "
              "share the calibration kernels' high hit rate — the locality "
              "property the paper selected its algorithms for)\n");
  return 0;
}
