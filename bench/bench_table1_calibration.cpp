// Reproduces Table I: instruction categories and their specific times and
// energies, derived with the Table II reference/test kernel methodology
// (Eq. 2) on the measurement board.
#include <cstdio>
#include <cstring>

#include "support.h"

namespace {

struct PaperRow {
  const char* category;
  double time_ns;
  double energy_nj;
};

// Table I of the paper (FPGA LEON3 measurements).
constexpr PaperRow kPaper[] = {
    {"Integer Arithmetic", 45, 15}, {"Jump", 238, 76},
    {"Memory Load", 700, 229},      {"Memory Store", 376, 166},
    {"NOP", 46, 13},                {"Other", 41, 13},
    {"FPU Arithmetic", 46, 14},     {"FPU Divide", 431, 431},
    {"FPU Square root", 612, 88},
};

}  // namespace

int main(int argc, char** argv) {
  const bool verbose = argc > 1 && std::strcmp(argv[1], "--verbose") == 0;

  nfp::board::BoardConfig cfg;  // realistic board: variation + meter noise
  const auto result = nfp::benchkit::calibrate(cfg);

  std::printf("== Table I: instruction categories, specific times and "
              "energies ==\n");
  std::printf("(calibrated on the simulated board via Eq. 2; paper values "
              "from the authors' FPGA alongside)\n\n");

  nfp::model::TextTable table(
      {"Instruction category", "t_c [ns]", "e_c [nJ]", "paper t_c [ns]",
       "paper e_c [nJ]"});
  const auto& scheme = nfp::model::CategoryScheme::paper();
  for (std::size_t c = 0; c < scheme.size(); ++c) {
    table.add_row({scheme.category_name(c),
                   nfp::model::TextTable::fmt(result.costs.time_ns[c], 1),
                   nfp::model::TextTable::fmt(result.costs.energy_nj[c], 1),
                   nfp::model::TextTable::fmt(kPaper[c].time_ns, 0),
                   nfp::model::TextTable::fmt(kPaper[c].energy_nj, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (verbose) {
    std::printf("raw Table-II kernel readings:\n");
    nfp::model::TextTable raw({"Category", "E_ref [uJ]", "E_test [uJ]",
                               "T_ref [ms]", "T_test [ms]"});
    for (const auto& d : result.details) {
      raw.add_row({d.category,
                   nfp::model::TextTable::fmt(d.e_ref_nj * 1e-3, 1),
                   nfp::model::TextTable::fmt(d.e_test_nj * 1e-3, 1),
                   nfp::model::TextTable::fmt(d.t_ref_s * 1e3, 2),
                   nfp::model::TextTable::fmt(d.t_test_s * 1e3, 2)});
    }
    std::printf("%s\n", raw.to_string().c_str());
  }

  // Shape checks mirrored from the paper (reported, not asserted).
  const auto& t = result.costs.time_ns;
  std::printf("shape: load(%.0fns) > store(%.0fns) > jump(%.0fns) > "
              "int(%.0fns); fdiv %.0fns, fsqrt %.0fns >> fpu-arith %.0fns\n",
              t[2], t[3], t[1], t[0], t[7], t[8], t[6]);
  return 0;
}
