// Reproduces Fig. 1: the simulation-speed vs estimation-accuracy ladder.
// Rungs, fastest/least-informative first:
//   1. algorithm-level analytic estimate (no simulation at all)
//   2. functional simulation (no non-functional properties)
//   3. ISS + mechanistic NFP model  <-- the paper's proposal
//   4. board, approximately timed (quasi cycle accurate)
//   5. board, cycle-stepped (CAS-like; ground truth by construction)
#include <chrono>
#include <cstdio>

#include "board/board.h"
#include "sim/iss.h"
#include "support.h"
#include "workloads/kernels.h"

namespace {

struct Rung {
  std::string name;
  double wall_s = 0.0;
  double mips = 0.0;
  bool has_estimate = false;
  double energy_err_pct = 0.0;
  double time_err_pct = 0.0;
};

template <typename Sim>
nfp::sim::RunResult run_with_inputs(Sim& sim,
                                    const nfp::model::KernelJob& job) {
  sim.load(job.program);
  for (const auto& [addr, bytes] : job.inputs) {
    sim.bus().write_block(addr, bytes.data(), bytes.size());
  }
  return sim.run(nfp::sim::Iss::kDefaultMaxInsns);
}

double wall_of(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("== Fig. 1: simulation speed vs estimation accuracy ==\n");
  nfp::board::BoardConfig cfg;
  const auto calibration = nfp::benchkit::calibrate(cfg);
  const auto& scheme = nfp::model::CategoryScheme::paper();

  nfp::workloads::MvcKernelParams params;
  params.qps = {32};
  const auto job = nfp::workloads::make_mvc_jobs(nfp::mcc::FloatAbi::kHard,
                                                 params)[3];  // lowdelay
  std::printf("workload: %s\n\n", job.name.c_str());

  // Ground truth: approximately-timed board.
  nfp::board::Board board(cfg);
  auto t0 = std::chrono::steady_clock::now();
  const auto board_run = run_with_inputs(board, job);
  const double board_wall = wall_of(t0);
  const double e_true = board.true_energy_nj();
  const double t_true = board.true_time_s();
  const auto instret = static_cast<double>(board_run.instret);

  std::vector<Rung> rungs;

  {  // 1. analytic algorithm-level model: pixels * rules of thumb.
    Rung r;
    r.name = "algorithm-level estimate";
    t0 = std::chrono::steady_clock::now();
    const double pixels = 48.0 * 48.0 * 5.0;
    const double insns_per_pixel = 300.0;  // rule of thumb
    const double mean_time_ns = 150.0;     // rule of thumb
    const double mean_energy_nj = 60.0;    // rule of thumb
    const double est_t = pixels * insns_per_pixel * mean_time_ns * 1e-9;
    const double est_e = pixels * insns_per_pixel * mean_energy_nj;
    r.wall_s = wall_of(t0);
    r.mips = 0.0;
    r.has_estimate = true;
    r.energy_err_pct = (est_e - e_true) / e_true * 100.0;
    r.time_err_pct = (est_t - t_true) / t_true * 100.0;
    rungs.push_back(r);
  }
  {  // 2. functional simulation only.
    nfp::sim::FunctionalSim sim;
    t0 = std::chrono::steady_clock::now();
    run_with_inputs(sim, job);
    Rung r;
    r.name = "functional simulation";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    rungs.push_back(r);
  }
  {  // 2b. functional simulation under the x86-64 template JIT — the
     // fastest rung that still executes every instruction (on hosts
     // without the jit this measures chained-block dispatch instead).
    nfp::sim::FunctionalSim sim;
    sim.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      sim.bus().write_block(addr, bytes.data(), bytes.size());
    }
    t0 = std::chrono::steady_clock::now();
    sim.run(nfp::sim::Iss::kDefaultMaxInsns, nfp::sim::Dispatch::kJit);
    Rung r;
    r.name = "functional simulation (jit)";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    rungs.push_back(r);
  }
  {  // 3. ISS + NFP model (the paper).
    nfp::sim::Iss iss;
    t0 = std::chrono::steady_clock::now();
    run_with_inputs(iss, job);
    Rung r;
    r.name = "ISS + NFP model (paper)";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    const auto est =
        nfp::model::estimate(iss.counters().counts, scheme, calibration.costs);
    r.has_estimate = true;
    r.energy_err_pct = (est.energy_nj - e_true) / e_true * 100.0;
    r.time_err_pct = (est.time_s - t_true) / t_true * 100.0;
    rungs.push_back(r);
  }
  {  // 4. board, approximately timed (block-cost dispatch, the default).
    Rung r;
    r.name = "board (approx timed, block)";
    r.wall_s = board_wall;
    r.mips = instret / board_wall / 1e6;
    r.has_estimate = true;
    r.energy_err_pct = 0.0;
    r.time_err_pct = 0.0;
    rungs.push_back(r);
  }
  {  // 4b. the same board under per-instruction stepping: the A/B baseline
     // for the block-cost dispatch. Accounting is bit-identical by
     // construction, so the error columns must print +0.0% — only the wall
     // clock moves.
    nfp::board::Board sim(cfg);
    sim.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      sim.bus().write_block(addr, bytes.data(), bytes.size());
    }
    t0 = std::chrono::steady_clock::now();
    sim.run(nfp::sim::Iss::kDefaultMaxInsns, nfp::sim::Dispatch::kStep);
    Rung r;
    r.name = "board (approx timed, step)";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    r.has_estimate = true;
    r.energy_err_pct = (sim.true_energy_nj() - e_true) / e_true * 100.0;
    r.time_err_pct = (sim.true_time_s() - t_true) / t_true * 100.0;
    rungs.push_back(r);
  }
  {  // 4c. the same board on the jit cost tier: emitted code retires the
     // static base cycles inline and captures dynamic residuals for batched
     // replay. Accounting is bit-identical by construction (+0.0% columns);
     // only the wall clock moves — this is the fastest exact-cost rung.
    nfp::board::Board sim(cfg);
    sim.load(job.program);
    for (const auto& [addr, bytes] : job.inputs) {
      sim.bus().write_block(addr, bytes.data(), bytes.size());
    }
    t0 = std::chrono::steady_clock::now();
    sim.run(nfp::sim::Iss::kDefaultMaxInsns, nfp::sim::Dispatch::kJit);
    Rung r;
    r.name = "board (approx timed, jit)";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    r.has_estimate = true;
    r.energy_err_pct = (sim.true_energy_nj() - e_true) / e_true * 100.0;
    r.time_err_pct = (sim.true_time_s() - t_true) / t_true * 100.0;
    rungs.push_back(r);
  }
  {  // 5. board, cycle-stepped (CAS-like).
    nfp::board::BoardConfig cas = cfg;
    cas.fidelity = nfp::board::Fidelity::kCycleStepped;
    nfp::board::Board sim(cas);
    t0 = std::chrono::steady_clock::now();
    run_with_inputs(sim, job);
    Rung r;
    r.name = "board (cycle-stepped, CAS-like)";
    r.wall_s = wall_of(t0);
    r.mips = instret / r.wall_s / 1e6;
    r.has_estimate = true;
    r.energy_err_pct = (sim.true_energy_nj() - e_true) / e_true * 100.0;
    r.time_err_pct = (sim.true_time_s() - t_true) / t_true * 100.0;
    rungs.push_back(r);
  }

  nfp::model::TextTable table({"Simulation level", "wall [ms]", "speed [MIPS]",
                               "energy err", "time err"});
  for (const auto& r : rungs) {
    table.add_row(
        {r.name, nfp::model::TextTable::fmt(r.wall_s * 1e3, 2),
         r.mips > 0 ? nfp::model::TextTable::fmt(r.mips, 1) : std::string("-"),
         r.has_estimate ? nfp::model::TextTable::percent(r.energy_err_pct)
                        : std::string("n/a"),
         r.has_estimate ? nfp::model::TextTable::percent(r.time_err_pct)
                        : std::string("n/a")});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(paper shape: speed falls and accuracy rises down the "
              "ladder; the ISS+model rung combines near-ISS speed with "
              "near-CAS accuracy)\n");
  return 0;
}
