// Reproduces Table IV: change of non-functional properties when introducing
// an FPU — per workload, the mean change in (estimated) energy and time of
// the float build relative to the fixed (-msoft-float) build, plus the chip
// area cost from the synthesis model.
#include <cstdio>
#include <cstring>

#include "board/area.h"
#include "nfp/dse.h"
#include "support.h"
#include "workloads/kernels.h"

namespace {

std::vector<nfp::model::Estimate> estimates_of(
    const std::vector<nfp::benchkit::KernelEval>& kernels) {
  std::vector<nfp::model::Estimate> out;
  for (const auto& k : kernels) {
    if (k.ok) out.push_back(k.estimated);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  nfp::board::BoardConfig cfg;
  const auto& scheme = nfp::model::CategoryScheme::paper();
  std::printf("== Table IV: effect of introducing an FPU ==\n");
  const auto calibration = nfp::benchkit::calibrate(cfg);

  nfp::workloads::MvcKernelParams mvc;
  nfp::workloads::FseKernelParams fse;
  if (quick) {
    mvc.qps = {32};
    fse.count = 6;
  }

  // Estimates for both ABIs of both workloads (the paper's "simulate the
  // execution of his code with and without an FPU").
  auto eval_of = [&](const std::vector<nfp::model::KernelJob>& jobs) {
    return nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);
  };
  const auto fse_float =
      eval_of(nfp::workloads::make_fse_jobs(nfp::mcc::FloatAbi::kHard, fse));
  const auto fse_fixed =
      eval_of(nfp::workloads::make_fse_jobs(nfp::mcc::FloatAbi::kSoft, fse));
  const auto mvc_float =
      eval_of(nfp::workloads::make_mvc_jobs(nfp::mcc::FloatAbi::kHard, mvc));
  const auto mvc_fixed =
      eval_of(nfp::workloads::make_mvc_jobs(nfp::mcc::FloatAbi::kSoft, mvc));

  const auto fse_impact = nfp::model::fpu_impact(
      "FSE", estimates_of(fse_float.kernels), estimates_of(fse_fixed.kernels));
  const auto mvc_impact = nfp::model::fpu_impact(
      "HEVC Decoding", estimates_of(mvc_float.kernels),
      estimates_of(mvc_fixed.kernels));

  nfp::model::TextTable table({"", "FSE", "HEVC Decoding", "paper FSE",
                               "paper HEVC"});
  table.add_row({"Energy consumption",
                 nfp::model::TextTable::percent(fse_impact.energy_change_percent, 1),
                 nfp::model::TextTable::percent(mvc_impact.energy_change_percent, 1),
                 "-92.6%", "-42.88%"});
  table.add_row({"Processing Time",
                 nfp::model::TextTable::percent(fse_impact.time_change_percent, 1),
                 nfp::model::TextTable::percent(mvc_impact.time_change_percent, 1),
                 "-92.8%", "-43.49%"});
  table.add_row({"# logical elements",
                 nfp::model::TextTable::percent(fse_impact.area_change_percent, 0),
                 nfp::model::TextTable::percent(mvc_impact.area_change_percent, 0),
                 "+109%", "+109%"});
  std::printf("%s\n", table.to_string().c_str());

  const nfp::board::AreaModel area;
  nfp::board::BoardConfig with_fpu = cfg;
  nfp::board::BoardConfig without_fpu = cfg;
  without_fpu.has_fpu = false;
  const auto a1 = area.synthesize(with_fpu);
  const auto a0 = area.synthesize(without_fpu);
  std::printf("synthesis: %u LEs without FPU, %u LEs with FPU\n", a0.total(),
              a1.total());
  return 0;
}
