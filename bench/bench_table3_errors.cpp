// Reproduces Table III: mean and maximum absolute estimation error over the
// full kernel set — 36 HEVC(MVC) bitstreams + 24 FSE kernels, each in the
// float (FPU) and fixed (-msoft-float) variants, i.e. 120 kernels.
#include <cstdio>
#include <cstring>

#include "support.h"
#include "workloads/kernels.h"

int main(int argc, char** argv) {
  bool quick = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--verbose") == 0) verbose = true;
  }

  nfp::board::BoardConfig cfg;
  const auto& scheme = nfp::model::CategoryScheme::paper();
  std::printf("== Table III: estimation error over the full kernel set ==\n");
  std::printf("calibrating the nine-category model (Table II kernels)...\n");
  const auto calibration = nfp::benchkit::calibrate(cfg);

  nfp::workloads::MvcKernelParams mvc;
  nfp::workloads::FseKernelParams fse;
  if (quick) {
    mvc.qps = {32};
    mvc.frames = 3;
    fse.count = 6;
    fse.iterations = 24;
  }

  std::vector<nfp::model::KernelJob> jobs;
  for (const auto abi : {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
    for (auto& job : nfp::workloads::make_mvc_jobs(abi, mvc)) {
      jobs.push_back(std::move(job));
    }
    for (auto& job : nfp::workloads::make_fse_jobs(abi, fse)) {
      jobs.push_back(std::move(job));
    }
  }
  std::printf("running %zu kernels on ISS + board...\n\n", jobs.size());

  const auto result =
      nfp::benchkit::evaluate(jobs, cfg, scheme, calibration.costs);
  if (verbose) {
    nfp::benchkit::print_eval_table("per-kernel results:", result);
  }
  for (const auto& k : result.kernels) {
    if (!k.ok) std::printf("FAILED kernel %s: %s\n", k.name.c_str(),
                           k.error.c_str());
  }

  nfp::model::TextTable table({"", "Energy", "Time"});
  table.add_row({"Mean absolute error",
                 nfp::model::TextTable::fmt(result.energy.mean_abs_percent()) + "%",
                 nfp::model::TextTable::fmt(result.time.mean_abs_percent()) + "%"});
  table.add_row({"Maximum absolute error",
                 nfp::model::TextTable::fmt(result.energy.max_abs_percent()) + "%",
                 nfp::model::TextTable::fmt(result.time.max_abs_percent()) + "%"});
  table.add_row({"paper: mean absolute error", "2.68%", "2.72%"});
  table.add_row({"paper: maximum absolute error", "6.32%", "6.95%"});
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
