// nfpc — command-line front end: compile Micro-C sources, run them on the
// simulated platform, and estimate their non-functional properties.
//
// Usage:
//   nfpc [options] file.c [more.c ...]
//     --soft-float      compile with the soft-float ABI (-msoft-float)
//     --asm             print the generated SPARC assembly and exit
//     --trace[=N]       print the first N executed instructions (default 64)
//     --estimate        calibrate the NFP model and print Ê / T̂ (Eq. 1)
//     --board           also run on the measurement board and compare
//     --scheme=NAME     estimation scheme (nfp/estimator.h registry): eq1
//                       (paper Eq. 1, default), events (PMU event-counter
//                       model), or time-proxy (energy from measured time).
//                       events and time-proxy read board-side counters, so
//                       they require --board
//     --counts          print per-category instruction counts
//     --dispatch=MODE   simulator dispatch: block (superblock morph cache
//                       with chaining, default), block-unchained (morph
//                       cache, every transition through lookup), jit
//                       (x86-64 template JIT above the morph cache; falls
//                       back to block on unsupported hosts), or step
//                       (per-instruction switch); applies to the ISS run
//                       and to the --board run (board accounting is
//                       bit-identical across modes; under jit the board
//                       runs cost-mode native code — static base cycles
//                       retire inline, dynamic residuals are captured and
//                       replayed in batch)
//     --sim-stats       print the full BlockCache::Stats after the run
//                       (morphs, flushes, chain/BTC counters); with
//                       --board, also the board's cache and jit stats and
//                       its PMU-style event-counter export (board/events.h)
//     --seed N          board/calibration noise seed for --estimate and
//                       --board campaigns (also --seed=N)
//     --max-insns N     ISS retirement budget (default 200M); with
//                       --save-state this is the checkpoint boundary
//     --save-state FILE write a versioned snapshot (sim/state_io.h) of the
//                       ISS after the run — halted or at the budget stop —
//                       so a later --load-state resumes bit-identically
//     --load-state FILE resume from a snapshot instead of compiling
//                       (no .c inputs); continues under --dispatch up to
//                       --max-insns and may itself --save-state again
//     --static-bounds   run the execution-free IPET estimator on the
//                       compiled program before executing it, printing
//                       guaranteed [lower, upper] NFP intervals (or the
//                       refusal reason) next to the dynamic numbers
//     --loop-bound ADDR=N
//                       annotate a loop header for --static-bounds when
//                       the counted-loop inference cannot find the bound
//                       (repeatable; ADDR is the header block address
//                       from nfplint --dump-cfg)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/cfg.h"
#include "analyze/ipet.h"
#include "board/board.h"
#include "cli_common.h"
#include "mcc/compiler.h"
#include "nfp/calibration.h"
#include "nfp/estimator.h"
#include "nfp/report.h"
#include "sim/iss.h"
#include "sim/trace.h"

namespace {

std::string read_file(const std::string& path) {
  return nfp::cli::read_file(path, "nfpc");
}

using nfp::cli::dispatch_name;

void print_sim_stats(const nfp::sim::BlockCache* cache) {
  if (cache == nullptr) {
    std::printf("sim stats: (no block cache attached)\n");
    return;
  }
  const auto& s = cache->stats();
  std::printf("sim stats:\n");
  std::printf("  blocks_morphed   %llu\n",
              static_cast<unsigned long long>(s.blocks_morphed));
  std::printf("  insns_morphed    %llu\n",
              static_cast<unsigned long long>(s.insns_morphed));
  std::printf("  flushes          %llu\n",
              static_cast<unsigned long long>(s.flushes));
  std::printf("  links_installed  %llu\n",
              static_cast<unsigned long long>(s.links_installed));
  std::printf("  links_severed    %llu\n",
              static_cast<unsigned long long>(s.links_severed));
  std::printf("  chain_hits       %llu\n",
              static_cast<unsigned long long>(s.chain_hits));
  std::printf("  btc_hits         %llu\n",
              static_cast<unsigned long long>(s.btc_hits));
  std::printf("  btc_misses       %llu\n",
              static_cast<unsigned long long>(s.btc_misses));
  std::printf("  lookup_fallbacks %llu\n",
              static_cast<unsigned long long>(s.lookup_fallbacks));
}

void print_event_counters(const nfp::board::EventCounters& ev) {
  std::printf("board events (v%u):\n", nfp::board::kEventCountersVersion);
  for (std::size_t i = 0; i < nfp::board::kEventCount; ++i) {
    const auto e = static_cast<nfp::board::Event>(i);
    std::printf("  %-16s %llu\n",
                std::string(nfp::board::event_name(e)).c_str(),
                static_cast<unsigned long long>(ev[e]));
  }
}

void print_jit_stats(nfp::sim::BlockCache* cache) {
  if (cache == nullptr) return;
  const nfp::sim::JitRuntime* jr = cache->jit();
  if (jr == nullptr) return;
  const auto& j = jr->stats();
  std::printf("jit: %llu blocks compiled (%llu rejected), %llu code "
              "bytes, %llu entries, %llu patches (%llu withdrawn), "
              "%llu slow-path insns, %llu inline-btc inserts "
              "(%llu hits)\n",
              static_cast<unsigned long long>(j.blocks_compiled),
              static_cast<unsigned long long>(j.blocks_rejected),
              static_cast<unsigned long long>(j.code_bytes),
              static_cast<unsigned long long>(j.entries),
              static_cast<unsigned long long>(j.patches),
              static_cast<unsigned long long>(j.unpatches),
              static_cast<unsigned long long>(j.helper_exec),
              static_cast<unsigned long long>(j.btc_inserts),
              static_cast<unsigned long long>(jr->inline_btc_hits()));
}

}  // namespace

int main(int argc, char** argv) {
  bool soft = false, want_asm = false, want_estimate = false;
  bool want_board = false, want_counts = false, want_sim_stats = false;
  bool want_static = false;
  nfp::analyze::IpetConfig ipet_cfg;
  nfp::sim::Dispatch dispatch = nfp::sim::Dispatch::kBlock;
  std::size_t trace_limit = 0;
  bool have_seed = false;
  std::uint32_t seed = 0;
  std::uint64_t max_insns = nfp::sim::Iss::kDefaultMaxInsns;
  std::string scheme_name = "eq1";
  std::string save_state_path;
  std::string load_state_path;
  std::vector<std::string> sources;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--soft-float") {
      soft = true;
    } else if (arg == "--asm") {
      want_asm = true;
    } else if (arg == "--estimate") {
      want_estimate = true;
    } else if (arg == "--board") {
      want_board = true;
    } else if (arg == "--counts") {
      want_counts = true;
    } else if (arg == "--static-bounds") {
      want_static = true;
    } else if (const char* v = nfp::cli::flag_value("--loop-bound", argc,
                                                    argv, i, "nfpc")) {
      if (!nfp::cli::parse_loop_bound(v, ipet_cfg.loop_bounds)) {
        std::fprintf(stderr, "nfpc: bad --loop-bound '%s' (want ADDR=N)\n", v);
        return 2;
      }
    } else if (const char* v =
                   nfp::cli::flag_value("--dispatch", argc, argv, i, "nfpc")) {
      dispatch = nfp::cli::effective_dispatch(
          nfp::cli::parse_dispatch(v, "nfpc"), "nfpc");
    } else if (const char* v =
                   nfp::cli::flag_value("--scheme", argc, argv, i, "nfpc")) {
      scheme_name = v;
    } else if (arg == "--sim-stats") {
      want_sim_stats = true;
    } else if (const char* v =
                   nfp::cli::flag_value("--seed", argc, argv, i, "nfpc")) {
      seed = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
      have_seed = true;
    } else if (const char* v = nfp::cli::flag_value("--max-insns", argc, argv,
                                                    i, "nfpc")) {
      max_insns = std::strtoull(v, nullptr, 0);
    } else if (const char* v = nfp::cli::flag_value("--save-state", argc,
                                                    argv, i, "nfpc")) {
      save_state_path = v;
    } else if (const char* v = nfp::cli::flag_value("--load-state", argc,
                                                    argv, i, "nfpc")) {
      load_state_path = v;
    } else if (arg.rfind("--trace", 0) == 0) {
      trace_limit = 64;
      if (arg.size() > 8 && arg[7] == '=') {
        trace_limit = std::strtoull(arg.c_str() + 8, nullptr, 0);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: nfpc [--soft-float] [--asm] [--trace[=N]] "
                  "[--estimate] [--board] [--counts] [--sim-stats] "
                  "[--scheme=eq1|events|time-proxy] "
                  "[--static-bounds] [--loop-bound ADDR=N]... "
                  "[--seed N] [--max-insns N] [--save-state FILE] "
                  "[--load-state FILE] "
                  "[--dispatch=step|block|block-unchained|jit] file.c ...\n");
      return 0;
    } else {
      sources.push_back(read_file(arg));
    }
  }
  const nfp::model::Estimator* est_scheme =
      nfp::model::find_estimator(scheme_name);
  if (est_scheme == nullptr) {
    std::fprintf(stderr, "nfpc: unknown --scheme '%s' (known: %s)\n",
                 scheme_name.c_str(),
                 nfp::model::estimator_names().c_str());
    return 2;
  }
  if (est_scheme->needs_board_run() && !want_board) {
    std::fprintf(stderr,
                 "nfpc: --scheme=%s reads board-side counters; it requires "
                 "--board\n",
                 scheme_name.c_str());
    return 2;
  }
  if (!load_state_path.empty()) {
    if (!sources.empty() || want_asm || want_board || want_static ||
        trace_limit > 0) {
      std::fprintf(stderr,
                   "nfpc: --load-state resumes a snapshot; it takes no .c "
                   "inputs and excludes --asm/--trace/--board/"
                   "--static-bounds\n");
      return 2;
    }
  } else if (sources.empty()) {
    std::fprintf(stderr, "nfpc: no input files (try --help)\n");
    return 2;
  }

  nfp::mcc::CompileOptions opts;
  opts.float_abi =
      soft ? nfp::mcc::FloatAbi::kSoft : nfp::mcc::FloatAbi::kHard;
  const nfp::mcc::Compiler compiler(opts);

  try {
    std::optional<nfp::asmkit::Program> program;
    nfp::sim::Iss iss;
    if (!load_state_path.empty()) {
      std::ifstream in(load_state_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "nfpc: cannot open %s\n",
                     load_state_path.c_str());
        return 2;
      }
      iss.restore_state(in);
      std::printf("nfpc: resumed %s at %llu instructions\n",
                  load_state_path.c_str(),
                  static_cast<unsigned long long>(iss.cpu().instret));
    } else {
      if (want_asm) {
        std::fputs(compiler.compile_to_asm(sources).c_str(), stdout);
        return 0;
      }
      program = compiler.compile(sources);
      std::printf("nfpc: %u bytes at 0x%08x (%s ABI)\n", program->size(),
                  program->base(), soft ? "soft-float" : "hard-float");

      if (want_static) {
        // Execution-free triangle leg: the IPET intervals are printed
        // before the run so they can be compared against the dynamic
        // numbers below (the board truth must land inside them).
        const nfp::analyze::Cfg cfg = nfp::analyze::build_cfg(*program);
        const nfp::analyze::IpetResult ipet =
            nfp::analyze::analyze_ipet(cfg, nfp::board::CostModel{},
                                       ipet_cfg);
        std::fputs(nfp::analyze::render(ipet).c_str(), stdout);
      }

      if (trace_limit > 0) {
        nfp::sim::TraceSim tracer(trace_limit);
        tracer.load(*program);
        std::fputs(tracer.run().c_str(), stdout);
      }

      iss.load(*program);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto run = iss.run(max_insns, dispatch);
    const double host_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!iss.bus().uart_output().empty()) {
      std::printf("--- uart ---\n%s--- end uart ---\n",
                  iss.bus().uart_output().c_str());
    }
    std::printf("exit code %u after %llu instructions%s\n", run.exit_code,
                static_cast<unsigned long long>(run.instret),
                run.halted ? "" : " (DID NOT HALT)");
    std::printf("dispatch %s: %.1f MIPS (%.3f ms host)\n",
                dispatch_name(dispatch),
                host_s > 0.0
                    ? static_cast<double>(run.instret) / host_s * 1e-6
                    : 0.0,
                host_s * 1e3);
    if (dispatch == nfp::sim::Dispatch::kBlock &&
        iss.platform().block_cache() != nullptr) {
      const auto& s = iss.platform().block_cache()->stats();
      std::printf("chain: %llu hits, %llu btc hits, %llu lookup fallbacks, "
                  "%llu links\n",
                  static_cast<unsigned long long>(s.chain_hits),
                  static_cast<unsigned long long>(s.btc_hits),
                  static_cast<unsigned long long>(s.lookup_fallbacks),
                  static_cast<unsigned long long>(s.links_installed));
    }
    if (dispatch == nfp::sim::Dispatch::kJit) {
      print_jit_stats(iss.platform().block_cache());
    }
    if (want_sim_stats) {
      print_sim_stats(dispatch == nfp::sim::Dispatch::kStep
                          ? nullptr
                          : iss.platform().block_cache());
    }
    if (!save_state_path.empty()) {
      std::ofstream out(save_state_path,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "nfpc: cannot write %s\n",
                     save_state_path.c_str());
        return 2;
      }
      iss.save_state(out);
      out.flush();
      std::printf("nfpc: state saved to %s (%lld bytes)\n",
                  save_state_path.c_str(),
                  static_cast<long long>(out.tellp()));
    }
    // A budget stop with --save-state is a checkpoint, not a failure: the
    // run continues under a later --load-state.
    if (!run.halted) return save_state_path.empty() ? 1 : 0;

    const auto& scheme = nfp::model::CategoryScheme::paper();
    if (want_counts) {
      const auto agg = scheme.aggregate(iss.counters().counts);
      nfp::model::TextTable table({"Category", "count", "share"});
      for (std::size_t c = 0; c < scheme.size(); ++c) {
        table.add_row({scheme.category_name(c), std::to_string(agg[c]),
                       nfp::model::TextTable::fmt(
                           100.0 * static_cast<double>(agg[c]) /
                               static_cast<double>(run.instret)) +
                           "%"});
      }
      std::fputs(table.to_string().c_str(), stdout);
    }

    if (want_estimate || want_board) {
      nfp::board::BoardConfig cfg;
      if (have_seed) cfg.seed = seed;
      std::printf("calibrating NFP model (scheme %s)...\n",
                  scheme_name.c_str());
      // fit() routes eq1 through the classic Eq. 2 differencing run, so the
      // default scheme prints exactly the numbers it always did.
      const auto calibration = nfp::model::Calibrator().fit(*est_scheme, cfg);
      nfp::model::RunSample sample;
      sample.counts = iss.counters().counts;
      sample.instret = run.instret;
      // The board runs before the estimate is printed: the event-based and
      // time-proxy schemes read their features off the board.
      std::optional<nfp::board::Measurement> meas;
      if (want_board) {
        nfp::board::Board board(cfg);
        board.load(*program);
        const auto b0 = std::chrono::steady_clock::now();
        const auto board_run =
            board.run(nfp::board::Board::kDefaultMaxInsns, dispatch);
        const double board_s = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - b0)
                                   .count();
        std::printf("board dispatch %s: %.1f MIPS (%.3f ms host)\n",
                    dispatch_name(dispatch),
                    board_s > 0.0 ? static_cast<double>(board_run.instret) /
                                        board_s * 1e-6
                                  : 0.0,
                    board_s * 1e3);
        if (dispatch == nfp::sim::Dispatch::kJit) {
          print_jit_stats(board.platform().block_cache());
        }
        if (want_sim_stats) {
          print_sim_stats(board.platform().block_cache());
          print_event_counters(board.events());
        }
        sample.events = board.events();
        meas = board.measure("nfpc");
        sample.measured_time_s = meas->time_s;
      }
      const auto est = est_scheme->estimate(sample, calibration.costs);
      std::printf("estimated: %.4f ms, %.3f uJ\n", est.time_s * 1e3,
                  est.energy_nj * 1e-3);
      if (meas) {
        std::printf("measured:  %.4f ms, %.3f uJ  (error: time %+.2f%%, "
                    "energy %+.2f%%)\n",
                    meas->time_s * 1e3, meas->energy_nj * 1e-3,
                    (est.time_s - meas->time_s) / meas->time_s * 100.0,
                    (est.energy_nj - meas->energy_nj) / meas->energy_nj *
                        100.0);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfpc: %s\n", e.what());
    return 1;
  }
  return 0;
}
