// nfpfuzz — differential fuzzer for the simulator's dispatch modes.
//
// Generates constrained-random SPARC V8 programs (src/fuzz/generator.h) and
// cross-checks full architectural state across Dispatch::kStep,
// kBlockUnchained, kBlock and kJit (on hosts where the jit can run) at
// randomized mid-run budget stops
// (src/fuzz/oracle.h). On divergence the program is ddmin-shrunk to a
// minimal reproducer and written into the corpus directory as a `.s` file
// ready to commit as a regression test.
//
// Usage:
//   nfpfuzz [options]
//     --seed N          base seed (run i uses seed N+i); default 1
//     --runs N          number of programs to generate; default 100
//     --mix NAME        chunk mix: default|alu|mem|cti|jmpl|fpu|selfmod,
//                       or "all" to rotate through every mix (default)
//     --chunks N        chunks per program; default 24
//     --max-insns N     per-mode retirement cap; default 4000000
//     --checkpoints N   randomized mid-run stops per program; default 4
//     --shrink / --no-shrink
//                       minimise diverging programs (default on)
//     --board / --no-board
//                       also cross-check the measurement board under
//                       kStep vs kBlock — cycles, energy (bit-for-bit),
//                       BoardStats, architectural state (default on)
//     --jit / --no-jit  include Dispatch::kJit in the cross-check matrix
//                       (default on; skipped automatically on hosts where
//                       jit_available() is false)
//     --board-jit / --no-board-jit
//                       also cross-check the board under kStep vs kJit (the
//                       cost-mode jit tier: native static-cost retirement +
//                       batched residual replay), same bit-for-bit compare
//                       as --board (default on; skipped when the jit is
//                       unavailable)
//     --snapshot / --no-snapshot
//                       also run the save→restore→continue leg: serialize
//                       the run at every budget stop, restore into a fresh
//                       executor rotating dispatch modes per segment, and
//                       compare every checkpoint against the straight kStep
//                       reference; with --board a board pair does the same
//                       against the board reference (default on)
//     --corpus-dir DIR  where reproducers are written;
//                       default tests/fuzz/corpus
//   All value flags accept both "--flag N" and "--flag=N".
//   Exit status: 0 if every run agreed, 1 on any divergence, 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_common.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t runs = 100;
  std::string mix = "all";
  std::uint32_t chunks = 24;
  std::uint64_t max_insns = 4'000'000;
  std::uint32_t checkpoints = 4;
  bool shrink = true;
  bool board = true;
  bool jit = true;
  bool board_jit = true;
  bool snapshot = true;
  std::string corpus_dir = "tests/fuzz/corpus";
};

const char* flag_value(const std::string& name, int argc, char** argv,
                       int& i) {
  return nfp::cli::flag_value(name, argc, argv, i, "nfpfuzz");
}

void usage() {
  std::printf(
      "usage: nfpfuzz [--seed N] [--runs N] [--mix NAME|all] [--chunks N]\n"
      "               [--max-insns N] [--checkpoints N] [--shrink|--no-shrink]\n"
      "               [--board|--no-board] [--jit|--no-jit]\n"
      "               [--board-jit|--no-board-jit] [--snapshot|--no-snapshot]\n"
      "               [--corpus-dir DIR]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = flag_value("--seed", argc, argv, i)) {
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = flag_value("--runs", argc, argv, i)) {
      opt.runs = std::strtoull(v, nullptr, 0);
    } else if (const char* v = flag_value("--mix", argc, argv, i)) {
      opt.mix = v;
    } else if (const char* v = flag_value("--chunks", argc, argv, i)) {
      opt.chunks = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--max-insns", argc, argv, i)) {
      opt.max_insns = std::strtoull(v, nullptr, 0);
    } else if (const char* v = flag_value("--checkpoints", argc, argv, i)) {
      opt.checkpoints =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (nfp::cli::bool_flag(arg, "--shrink", opt.shrink) ||
               nfp::cli::bool_flag(arg, "--board", opt.board) ||
               nfp::cli::bool_flag(arg, "--board-jit", opt.board_jit) ||
               nfp::cli::bool_flag(arg, "--jit", opt.jit) ||
               nfp::cli::bool_flag(arg, "--snapshot", opt.snapshot)) {
      // handled by bool_flag
    } else if (const char* v = flag_value("--corpus-dir", argc, argv, i)) {
      opt.corpus_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "nfpfuzz: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (opt.mix != "all" && !nfp::fuzz::mix_from_name(opt.mix)) {
    std::fprintf(stderr, "nfpfuzz: unknown mix '%s'\n", opt.mix.c_str());
    return 2;
  }

  nfp::fuzz::DiffArena arena;
  const auto& rotation = nfp::fuzz::mix_names();
  std::uint64_t divergences = 0;
  std::uint64_t total_insns = 0;

  for (std::uint64_t run = 0; run < opt.runs; ++run) {
    nfp::fuzz::GenConfig gen_cfg;
    gen_cfg.seed = opt.seed + run;
    gen_cfg.chunks = opt.chunks;
    gen_cfg.mix_name =
        opt.mix == "all" ? rotation[run % rotation.size()] : opt.mix;
    gen_cfg.mix = *nfp::fuzz::mix_from_name(gen_cfg.mix_name);

    const nfp::fuzz::GenProgram program = nfp::fuzz::generate(gen_cfg);

    nfp::fuzz::DiffConfig diff_cfg;
    diff_cfg.max_insns = opt.max_insns;
    diff_cfg.checkpoints = opt.checkpoints;
    diff_cfg.checkpoint_seed = gen_cfg.seed;
    diff_cfg.check_board = opt.board;
    diff_cfg.check_jit = opt.jit;
    diff_cfg.check_board_jit = opt.board_jit;
    diff_cfg.check_snapshot = opt.snapshot;

    nfp::fuzz::DiffReport report;
    try {
      report = nfp::fuzz::run_differential_source(
          nfp::fuzz::render(program), diff_cfg, arena);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "nfpfuzz: seed %llu (mix %s): generator produced invalid "
                   "program: %s\n",
                   static_cast<unsigned long long>(gen_cfg.seed),
                   gen_cfg.mix_name.c_str(), e.what());
      return 2;
    }
    total_insns += report.step_instret;

    if (!report.diverged) {
      if ((run + 1) % 50 == 0 || run + 1 == opt.runs) {
        std::printf("nfpfuzz: %llu/%llu ok (%llu insns retired)\n",
                    static_cast<unsigned long long>(run + 1),
                    static_cast<unsigned long long>(opt.runs),
                    static_cast<unsigned long long>(total_insns));
      }
      continue;
    }

    ++divergences;
    std::printf("nfpfuzz: DIVERGENCE at seed %llu (mix %s)\n  %s\n",
                static_cast<unsigned long long>(gen_cfg.seed),
                gen_cfg.mix_name.c_str(), report.detail.c_str());

    std::string source = nfp::fuzz::render(program);
    nfp::fuzz::DiffReport final_report = report;
    if (opt.shrink) {
      const nfp::fuzz::ShrinkResult shrunk =
          nfp::fuzz::shrink(program, diff_cfg, arena);
      if (shrunk.diverged) {
        source = shrunk.source;
        final_report = shrunk.report;
        std::printf(
            "  shrunk to %zu chunk(s), %zu instruction(s) in %zu oracle "
            "run(s)\n",
            shrunk.chunks_kept, shrunk.instructions, shrunk.oracle_runs);
      }
    }
    const std::string path = nfp::fuzz::write_corpus_entry(
        opt.corpus_dir, gen_cfg.seed, gen_cfg.mix_name, final_report, source);
    std::printf("  reproducer written to %s\n", path.c_str());
  }

  std::printf("nfpfuzz: %llu run(s), %llu divergence(s), %llu instructions "
              "cross-checked\n",
              static_cast<unsigned long long>(opt.runs),
              static_cast<unsigned long long>(divergences),
              static_cast<unsigned long long>(total_insns));
  return divergences == 0 ? 0 : 1;
}
