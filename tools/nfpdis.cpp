// nfpdis — assemble a SPARC assembly file and print an annotated listing,
// or disassemble the text section of a compiled Micro-C program.
//
// Usage: nfpdis file.s            (assembly listing)
//        nfpdis --mc file.c ...   (compile Micro-C, then disassemble)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "cli_common.h"
#include "isa/disasm.h"
#include "mcc/compiler.h"
#include "sim/memmap.h"

namespace {

std::string read_file(const std::string& path) {
  return nfp::cli::read_file(path, "nfpdis");
}

void listing(const nfp::asmkit::Program& program) {
  // Invert the symbol table for annotation.
  for (std::uint32_t off = 0; off + 4 <= program.size(); off += 4) {
    const std::uint32_t addr = program.base() + off;
    for (const auto& [name, sym_addr] : program.symbols()) {
      if (sym_addr == addr) std::printf("%s:\n", name.c_str());
    }
    const auto& b = program.bytes();
    const std::uint32_t word = (std::uint32_t{b[off]} << 24) |
                               (std::uint32_t{b[off + 1]} << 16) |
                               (std::uint32_t{b[off + 2]} << 8) | b[off + 3];
    std::printf("  %08x:  %08x  %s\n", addr, word,
                nfp::isa::disassemble_word(word, addr).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool micro_c = false;
  bool soft = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mc") == 0) {
      micro_c = true;
    } else if (std::strcmp(argv[i], "--soft-float") == 0) {
      soft = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: nfpdis [--mc [--soft-float]] file [file...]\n");
    return 2;
  }

  try {
    if (micro_c) {
      std::vector<std::string> sources;
      for (const auto& f : files) sources.push_back(read_file(f));
      nfp::mcc::CompileOptions opts;
      opts.float_abi =
          soft ? nfp::mcc::FloatAbi::kSoft : nfp::mcc::FloatAbi::kHard;
      listing(nfp::mcc::Compiler(opts).compile(sources));
    } else {
      for (const auto& f : files) {
        listing(nfp::asmkit::assemble(read_file(f), nfp::sim::kTextBase));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfpdis: %s\n", e.what());
    return 1;
  }
  return 0;
}
