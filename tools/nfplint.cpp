// nfplint — static analysis front end for the nfp toolchain.
//
// Two modes:
//
//   nfplint --sweep [options]
//     Decoder-consistency sweep: structured enumeration of the 32-bit
//     instruction space (a few million encodings) cross-checking decode,
//     categorisation, morph grouping, re-encoding round-trips and the
//     disassembler against an independent field-level classifier. Prints a
//     machine-readable per-family table and any inconsistencies.
//
//   nfplint [--mc [--soft-float]] [--dump-cfg] [--bounds]
//           [--loop-bound ADDR=N]... file [file...]
//     Static CFG recovery and linting of assembly (or Micro-C) programs:
//     delay-slot legality, illegal encodings on reachable paths, edges off
//     the image, unreachable code. With --bounds, also folds the recovered
//     blocks with the board cost model into pre-run Ê/T̂ bounds
//     (--loop-bound annotates loop headers for the upper estimate).
//
//   All value flags accept both "--flag N" and "--flag=N".
//   Exit status: 0 clean, 1 findings (errors or sweep inconsistencies),
//   2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/bounds.h"
#include "analyze/cfg.h"
#include "analyze/sweep.h"
#include "asmkit/assembler.h"
#include "cli_common.h"
#include "mcc/compiler.h"
#include "sim/memmap.h"

namespace {

struct Options {
  bool sweep = false;
  bool micro_c = false;
  bool soft_float = false;
  bool dump_cfg = false;
  bool bounds = false;
  nfp::analyze::SweepConfig sweep_cfg;
  nfp::analyze::BoundsConfig bounds_cfg;
  std::vector<std::string> files;
};

const char* flag_value(const std::string& name, int argc, char** argv,
                       int& i) {
  return nfp::cli::flag_value(name, argc, argv, i, "nfplint");
}

void usage() {
  std::printf(
      "usage: nfplint --sweep [--imm-samples N] [--reg-samples N]\n"
      "               [--asi-samples N] [--seed N] [--max-findings N]\n"
      "       nfplint [--mc [--soft-float]] [--dump-cfg] [--bounds]\n"
      "               [--loop-bound ADDR=N]... file [file...]\n");
}

bool parse_loop_bound(const char* text,
                      std::map<std::uint32_t, std::uint64_t>& bounds) {
  const char* eq = std::strchr(text, '=');
  if (eq == nullptr || eq == text) return false;
  char* end = nullptr;
  const unsigned long addr = std::strtoul(text, &end, 0);
  if (end != eq) return false;
  const unsigned long long n = std::strtoull(eq + 1, &end, 0);
  if (*end != '\0' || n == 0) return false;
  bounds[static_cast<std::uint32_t>(addr)] = n;
  return true;
}

int run_sweep_mode(const Options& opt) {
  const nfp::analyze::SweepResult result =
      nfp::analyze::run_sweep(opt.sweep_cfg);
  std::fputs(result.table().c_str(), stdout);
  std::printf("# total enumerated %llu accepted %llu rejected %llu\n",
              static_cast<unsigned long long>(result.enumerated),
              static_cast<unsigned long long>(result.accepted),
              static_cast<unsigned long long>(result.rejected));
  for (const auto& f : result.findings) {
    std::printf("inconsistency %08x %s: %s\n", f.word, f.check.c_str(),
                f.detail.c_str());
  }
  if (!result.consistent()) {
    std::printf("sweep: %llu inconsistencies\n",
                static_cast<unsigned long long>(result.findings_total));
    return 1;
  }
  std::printf("sweep: consistent\n");
  return 0;
}

int lint_program(const nfp::asmkit::Program& program, const std::string& name,
                 const Options& opt) {
  const nfp::analyze::Cfg cfg = nfp::analyze::build_cfg(program);
  for (const auto& f : cfg.findings) {
    std::printf("%s: %s\n", name.c_str(), nfp::analyze::render(f).c_str());
  }
  if (opt.dump_cfg) std::fputs(nfp::analyze::dump(cfg).c_str(), stdout);
  if (opt.bounds) {
    nfp::board::CostModel costs;
    const nfp::analyze::BoundsResult bounds =
        nfp::analyze::analyze_bounds(cfg, costs, opt.bounds_cfg);
    std::fputs(nfp::analyze::render(bounds).c_str(), stdout);
  }
  std::printf("%s: %zu block(s), %zu error(s), %zu finding(s)\n", name.c_str(),
              cfg.blocks.size(), cfg.error_count(), cfg.findings.size());
  return cfg.has_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--mc") {
      opt.micro_c = true;
    } else if (arg == "--soft-float") {
      opt.soft_float = true;
    } else if (arg == "--dump-cfg") {
      opt.dump_cfg = true;
    } else if (arg == "--bounds") {
      opt.bounds = true;
    } else if (const char* v = flag_value("--loop-bound", argc, argv, i)) {
      if (!parse_loop_bound(v, opt.bounds_cfg.loop_bounds)) {
        std::fprintf(stderr, "nfplint: bad --loop-bound '%s' (want ADDR=N)\n",
                     v);
        return 2;
      }
    } else if (const char* v = flag_value("--imm-samples", argc, argv, i)) {
      opt.sweep_cfg.imm_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--reg-samples", argc, argv, i)) {
      opt.sweep_cfg.reg_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--asi-samples", argc, argv, i)) {
      opt.sweep_cfg.asi_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--seed", argc, argv, i)) {
      opt.sweep_cfg.seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = flag_value("--max-findings", argc, argv, i)) {
      opt.sweep_cfg.max_findings = std::strtoull(v, nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nfplint: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }

  if (opt.sweep) {
    if (!opt.files.empty()) {
      std::fprintf(stderr, "nfplint: --sweep takes no files\n");
      return 2;
    }
    return run_sweep_mode(opt);
  }
  if (opt.files.empty()) {
    usage();
    return 2;
  }

  int status = 0;
  try {
    if (opt.micro_c) {
      std::vector<std::string> sources;
      for (const auto& f : opt.files) {
        sources.push_back(nfp::cli::read_file(f, "nfplint"));
      }
      nfp::mcc::CompileOptions mcc_opts;
      mcc_opts.float_abi = opt.soft_float ? nfp::mcc::FloatAbi::kSoft
                                          : nfp::mcc::FloatAbi::kHard;
      status = lint_program(nfp::mcc::Compiler(mcc_opts).compile(sources),
                            opt.files.front(), opt);
    } else {
      for (const auto& f : opt.files) {
        status |= lint_program(
            nfp::asmkit::assemble(nfp::cli::read_file(f, "nfplint"),
                                  nfp::sim::kTextBase),
            f, opt);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfplint: %s\n", e.what());
    return 2;
  }
  return status;
}
