// nfplint — static analysis front end for the nfp toolchain.
//
// Two modes:
//
//   nfplint --sweep [options]
//     Decoder-consistency sweep: structured enumeration of the 32-bit
//     instruction space (a few million encodings) cross-checking decode,
//     categorisation, morph grouping, re-encoding round-trips and the
//     disassembler against an independent field-level classifier. Prints a
//     machine-readable per-family table and any inconsistencies.
//
//   nfplint [--mc [--soft-float]] [--dump-cfg] [--bounds] [--estimate]
//           [--json] [--loop-bound ADDR=N]... [--loop-total ADDR=N]...
//           file [file...]
//     Static CFG recovery and linting of assembly (or Micro-C) programs:
//     delay-slot legality, illegal encodings on reachable paths, edges off
//     the image, unreachable code. The CFG is recovered once per image and
//     shared by every analysis pass. With --bounds, also folds the recovered
//     blocks with the board cost model into pre-run Ê/T̂ bounds; with
//     --estimate, runs the execution-free IPET flow solver for guaranteed
//     [lower, upper] intervals with per-loop bound provenance. --loop-bound
//     annotates loop headers (relative, per loop entry); --loop-total pins
//     absolute header-execution totals (e.g. from a profiled reference run;
//     0 pins a dead loop). --json switches both reports to one JSON object
//     per image on stdout.
//
//   All value flags accept both "--flag N" and "--flag=N".
//   Exit status: 0 clean, 1 findings (errors or sweep inconsistencies),
//   2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analyze/bounds.h"
#include "analyze/cfg.h"
#include "analyze/ipet.h"
#include "analyze/sweep.h"
#include "asmkit/assembler.h"
#include "cli_common.h"
#include "mcc/compiler.h"
#include "sim/memmap.h"

namespace {

struct Options {
  bool sweep = false;
  bool micro_c = false;
  bool soft_float = false;
  bool dump_cfg = false;
  bool bounds = false;
  bool estimate = false;
  bool json = false;
  nfp::analyze::SweepConfig sweep_cfg;
  nfp::analyze::BoundsConfig bounds_cfg;
  nfp::analyze::IpetConfig ipet_cfg;
  std::vector<std::string> files;
};

const char* flag_value(const std::string& name, int argc, char** argv,
                       int& i) {
  return nfp::cli::flag_value(name, argc, argv, i, "nfplint");
}

void usage() {
  std::printf(
      "usage: nfplint --sweep [--imm-samples N] [--reg-samples N]\n"
      "               [--asi-samples N] [--seed N] [--max-findings N]\n"
      "       nfplint [--mc [--soft-float]] [--dump-cfg] [--bounds]\n"
      "               [--estimate] [--json] [--loop-bound ADDR=N]...\n"
      "               [--loop-total ADDR=N]... file [file...]\n");
}

int run_sweep_mode(const Options& opt) {
  const nfp::analyze::SweepResult result =
      nfp::analyze::run_sweep(opt.sweep_cfg);
  std::fputs(result.table().c_str(), stdout);
  std::printf("# total enumerated %llu accepted %llu rejected %llu\n",
              static_cast<unsigned long long>(result.enumerated),
              static_cast<unsigned long long>(result.accepted),
              static_cast<unsigned long long>(result.rejected));
  for (const auto& f : result.findings) {
    std::printf("inconsistency %08x %s: %s\n", f.word, f.check.c_str(),
                f.detail.c_str());
  }
  if (!result.consistent()) {
    std::printf("sweep: %llu inconsistencies\n",
                static_cast<unsigned long long>(result.findings_total));
    return 1;
  }
  std::printf("sweep: consistent\n");
  return 0;
}

int lint_program(const nfp::asmkit::Program& program, const std::string& name,
                 const Options& opt) {
  // One CFG recovery per image; findings, --dump-cfg, --bounds and
  // --estimate all read the same recovered graph.
  const nfp::analyze::Cfg cfg = nfp::analyze::build_cfg(program);
  if (!opt.json) {
    for (const auto& f : cfg.findings) {
      std::printf("%s: %s\n", name.c_str(), nfp::analyze::render(f).c_str());
    }
  }
  if (opt.dump_cfg) std::fputs(nfp::analyze::dump(cfg).c_str(), stdout);
  const nfp::board::CostModel costs;
  std::string json_fields;
  if (opt.bounds) {
    const nfp::analyze::BoundsResult bounds =
        nfp::analyze::analyze_bounds(cfg, costs, opt.bounds_cfg);
    if (opt.json) {
      json_fields += "\"bounds\":" + nfp::analyze::to_json(bounds);
    } else {
      std::fputs(nfp::analyze::render(bounds).c_str(), stdout);
    }
  }
  if (opt.estimate) {
    const nfp::analyze::IpetResult ipet =
        nfp::analyze::analyze_ipet(cfg, costs, opt.ipet_cfg);
    if (opt.json) {
      if (!json_fields.empty()) json_fields += ",";
      json_fields += "\"ipet\":" + nfp::analyze::to_json(ipet);
    } else {
      std::fputs(nfp::analyze::render(ipet).c_str(), stdout);
    }
  }
  if (opt.json) {
    std::printf("{\"file\":\"%s\",\"blocks\":%zu,\"errors\":%zu,"
                "\"findings\":%zu%s%s}\n",
                name.c_str(), cfg.blocks.size(), cfg.error_count(),
                cfg.findings.size(), json_fields.empty() ? "" : ",",
                json_fields.c_str());
  } else {
    std::printf("%s: %zu block(s), %zu error(s), %zu finding(s)\n",
                name.c_str(), cfg.blocks.size(), cfg.error_count(),
                cfg.findings.size());
  }
  return cfg.has_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--mc") {
      opt.micro_c = true;
    } else if (arg == "--soft-float") {
      opt.soft_float = true;
    } else if (arg == "--dump-cfg") {
      opt.dump_cfg = true;
    } else if (arg == "--bounds") {
      opt.bounds = true;
    } else if (arg == "--estimate") {
      opt.estimate = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (const char* v = flag_value("--loop-bound", argc, argv, i)) {
      if (!nfp::cli::parse_loop_bound(v, opt.bounds_cfg.loop_bounds)) {
        std::fprintf(stderr, "nfplint: bad --loop-bound '%s' (want ADDR=N)\n",
                     v);
        return 2;
      }
      opt.ipet_cfg.loop_bounds = opt.bounds_cfg.loop_bounds;
    } else if (const char* v = flag_value("--loop-total", argc, argv, i)) {
      if (!nfp::cli::parse_loop_bound(v, opt.ipet_cfg.loop_totals,
                                      /*allow_zero=*/true)) {
        std::fprintf(stderr, "nfplint: bad --loop-total '%s' (want ADDR=N)\n",
                     v);
        return 2;
      }
    } else if (const char* v = flag_value("--imm-samples", argc, argv, i)) {
      opt.sweep_cfg.imm_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--reg-samples", argc, argv, i)) {
      opt.sweep_cfg.reg_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--asi-samples", argc, argv, i)) {
      opt.sweep_cfg.asi_samples =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v = flag_value("--seed", argc, argv, i)) {
      opt.sweep_cfg.seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = flag_value("--max-findings", argc, argv, i)) {
      opt.sweep_cfg.max_findings = std::strtoull(v, nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nfplint: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }

  if (opt.sweep) {
    if (!opt.files.empty()) {
      std::fprintf(stderr, "nfplint: --sweep takes no files\n");
      return 2;
    }
    return run_sweep_mode(opt);
  }
  if (opt.files.empty()) {
    usage();
    return 2;
  }

  int status = 0;
  try {
    if (opt.micro_c) {
      std::vector<std::string> sources;
      for (const auto& f : opt.files) {
        sources.push_back(nfp::cli::read_file(f, "nfplint"));
      }
      nfp::mcc::CompileOptions mcc_opts;
      mcc_opts.float_abi = opt.soft_float ? nfp::mcc::FloatAbi::kSoft
                                          : nfp::mcc::FloatAbi::kHard;
      status = lint_program(nfp::mcc::Compiler(mcc_opts).compile(sources),
                            opt.files.front(), opt);
    } else {
      for (const auto& f : opt.files) {
        status |= lint_program(
            nfp::asmkit::assemble(nfp::cli::read_file(f, "nfplint"),
                                  nfp::sim::kTextBase),
            f, opt);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfplint: %s\n", e.what());
    return 2;
  }
  return status;
}
