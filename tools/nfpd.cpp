// nfpd — sharded estimation campaign service front end.
//
// Feeds estimation jobs (kernel + inputs + budget) through the library-level
// CampaignService (nfp/service.h): jobs shard across persistent worker
// threads with work stealing, long jobs are preempted and checkpointed at
// slice boundaries through the versioned snapshot format (sim/state_io.h),
// and one JSON-lines record per finished job streams to stdout as it
// completes. A summary (jobs, slices, checkpoints, steals) goes to stderr.
//
// Usage:
//   nfpd [options] [kernel.s ...]
//     --campaign        run the paper's 120-kernel set (Sec. VI): the 36
//                       MVC/HEVC and 24 FSE kernels, each in the float and
//                       fixed (soft-float) ABI
//     --workers N       worker thread count; default min(cores, 8)
//     --slice N         preemption grain in retired instructions; every job
//                       is checkpointed and re-queued each N instructions
//                       (0 = run each job phase to completion; default 0)
//     --max-insns N     per-job retirement budget (default 20e9)
//     --dispatch MODE   board dispatch: step|block|block-unchained|jit
//                       (default: jit where available, else block;
//                       accounting is bit-identical across modes)
//     --seed N          board noise seed (BoardConfig::seed)
//     --estimate / --no-estimate
//                       calibrate once and add estimates to every record
//                       (default on)
//     --scheme NAME     estimation scheme behind the estimates: eq1 (paper
//                       Eq. 1, default; bit-identical to the classic
//                       pipeline), events (PMU event-counter model), or
//                       time-proxy (energy from measured time); the record
//                       carries the scheme name and the board's event
//                       counters
//     --static-first    execution-free fast path: run the IPET static
//                       estimator (analyze/ipet) over each job before its
//                       first slice and stream the guaranteed interval
//                       immediately as {"id":..,"name":..,"static":{..}};
//                       the dynamic run then refines it and the final
//                       record carries the same "static" object
//     --static-only     like --static-first, but an accepted interval is
//                       served as the final answer (no ISS/board run);
//                       refused programs still run dynamically
//   Positional arguments are SPARC V8 assembly kernels, assembled at the
//   platform text base and appended after any --campaign set.
//   All value flags accept both "--flag N" and "--flag=N".
//   Exit status: 0 if every job succeeded, 1 otherwise, 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/cfg.h"
#include "analyze/ipet.h"
#include "asmkit/assembler.h"
#include "board/cost_model.h"
#include "cli_common.h"
#include "mcc/compiler.h"
#include "nfp/service.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace {

void usage() {
  std::printf(
      "usage: nfpd [--campaign] [--workers N] [--slice N] [--max-insns N]\n"
      "            [--dispatch MODE] [--seed N] [--estimate|--no-estimate]\n"
      "            [--scheme eq1|events|time-proxy]\n"
      "            [--static-first|--static-only] [kernel.s ...]\n");
}

// The analyzer injection: nfp_model never links nfp_analyze, so nfpd folds
// the IPET result down to the service's transport struct here.
nfp::model::StaticBounds run_static_estimator(
    const nfp::asmkit::Program& program) {
  const nfp::analyze::Cfg cfg = nfp::analyze::build_cfg(program);
  const nfp::analyze::IpetResult ipet =
      nfp::analyze::analyze_ipet(cfg, nfp::board::CostModel{});
  nfp::model::StaticBounds b;
  b.accepted = ipet.accepted;
  if (!ipet.accepted) {
    b.reason = nfp::analyze::to_string(ipet.refusal);
    return b;
  }
  b.insns_lower = static_cast<std::uint64_t>(ipet.insns.lower);
  b.insns_upper = static_cast<std::uint64_t>(ipet.insns.upper);
  b.cycles_lower = static_cast<std::uint64_t>(ipet.cycles.lower);
  b.cycles_upper = static_cast<std::uint64_t>(ipet.cycles.upper);
  b.time_lower_s = ipet.time_s.lower;
  b.time_upper_s = ipet.time_s.upper;
  b.energy_lower_nj = ipet.energy_nj.lower;
  b.energy_upper_nj = ipet.energy_nj.upper;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  nfp::model::ServiceConfig cfg;
  bool campaign = false;
  bool have_dispatch = false;
  std::uint64_t slice = 0;
  std::uint64_t max_insns = nfp::board::Board::kDefaultMaxInsns;
  std::vector<std::string> kernel_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--campaign") {
      campaign = true;
    } else if (const char* v =
                   nfp::cli::flag_value("--workers", argc, argv, i, "nfpd")) {
      cfg.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (const char* v =
                   nfp::cli::flag_value("--slice", argc, argv, i, "nfpd")) {
      slice = std::strtoull(v, nullptr, 0);
    } else if (const char* v = nfp::cli::flag_value("--max-insns", argc, argv,
                                                    i, "nfpd")) {
      max_insns = std::strtoull(v, nullptr, 0);
    } else if (const char* v =
                   nfp::cli::flag_value("--dispatch", argc, argv, i, "nfpd")) {
      cfg.dispatch = nfp::cli::effective_dispatch(
          nfp::cli::parse_dispatch(v, "nfpd"), "nfpd");
      have_dispatch = true;
    } else if (const char* v =
                   nfp::cli::flag_value("--seed", argc, argv, i, "nfpd")) {
      cfg.board.seed = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (const char* v =
                   nfp::cli::flag_value("--scheme", argc, argv, i, "nfpd")) {
      if (nfp::model::find_estimator(v) == nullptr) {
        std::fprintf(stderr, "nfpd: unknown --scheme '%s' (known: %s)\n", v,
                     nfp::model::estimator_names().c_str());
        return 2;
      }
      cfg.scheme = v;
    } else if (nfp::cli::bool_flag(arg, "--estimate", cfg.calibrate)) {
      // handled by bool_flag
    } else if (arg == "--static-first") {
      cfg.static_estimator = run_static_estimator;
    } else if (arg == "--static-only") {
      cfg.static_estimator = run_static_estimator;
      cfg.static_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nfpd: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      kernel_paths.push_back(arg);
    }
  }
  (void)have_dispatch;
  if (!campaign && kernel_paths.empty()) {
    std::fprintf(stderr, "nfpd: no jobs (use --campaign or pass .s files)\n");
    usage();
    return 2;
  }

  std::vector<nfp::model::ServiceJob> jobs;
  try {
    if (campaign) {
      // The paper's full test set: every MVC and FSE kernel in both ABIs.
      std::vector<nfp::model::KernelJob> set;
      for (const auto abi :
           {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
        for (auto& j : nfp::workloads::make_mvc_jobs(abi)) {
          set.push_back(std::move(j));
        }
        for (auto& j : nfp::workloads::make_fse_jobs(abi)) {
          set.push_back(std::move(j));
        }
      }
      for (auto& j : set) {
        nfp::model::ServiceJob sj;
        sj.name = std::move(j.name);
        sj.program = std::move(j.program);
        sj.inputs = std::move(j.inputs);
        sj.max_insns = max_insns;
        sj.slice_insns = slice;
        jobs.push_back(std::move(sj));
      }
    }
    for (const std::string& path : kernel_paths) {
      nfp::model::ServiceJob sj;
      sj.name = path;
      sj.program = nfp::asmkit::assemble(nfp::cli::read_file(path, "nfpd"),
                                         nfp::sim::kTextBase);
      sj.max_insns = max_insns;
      sj.slice_insns = slice;
      jobs.push_back(std::move(sj));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfpd: %s\n", e.what());
    return 2;
  }

  const bool want_static = static_cast<bool>(cfg.static_estimator);
  nfp::model::CampaignService service(cfg);
  service.set_sink([](const nfp::model::ServiceResult& r) {
    std::puts(nfp::model::result_json_line(r).c_str());
    std::fflush(stdout);
  });
  if (want_static) {
    service.set_static_sink([](std::uint64_t id, const std::string& name,
                               const nfp::model::StaticBounds& b) {
      std::string line = "{\"id\":" + std::to_string(id) + ",\"name\":\"" +
                         name + "\",\"static\":" +
                         nfp::model::static_bounds_json(b) + "}";
      std::puts(line.c_str());
      std::fflush(stdout);
    });
  }

  std::size_t failed = 0, static_served = 0;
  const auto results = service.run_jobs(std::move(jobs));
  for (const auto& r : results) {
    if (!r.record.ok) ++failed;
    if (r.static_served) ++static_served;
  }
  const auto stats = service.stats();
  std::fprintf(stderr,
               "nfpd: %llu job(s) on %u worker(s) under %s dispatch: "
               "%llu slice(s), %llu checkpoint(s) (%llu bytes), "
               "%llu resume(s), %llu steal(s), %zu failure(s)\n",
               static_cast<unsigned long long>(stats.jobs_completed),
               service.workers(),
               nfp::cli::dispatch_name(service.board_dispatch()),
               static_cast<unsigned long long>(stats.slices),
               static_cast<unsigned long long>(stats.checkpoints),
               static_cast<unsigned long long>(stats.checkpoint_bytes),
               static_cast<unsigned long long>(stats.resumes),
               static_cast<unsigned long long>(stats.steals), failed);
  if (static_served > 0) {
    std::fprintf(stderr,
                 "nfpd: %zu job(s) served from the static fast path "
                 "(no execution)\n",
                 static_served);
  }
  return failed == 0 ? 0 : 1;
}
