// nfpd — sharded estimation campaign service front end.
//
// Feeds estimation jobs (kernel + inputs + budget) through the library-level
// CampaignService (nfp/service.h): jobs shard across persistent worker
// threads with work stealing, long jobs are preempted and checkpointed at
// slice boundaries through the versioned snapshot format (sim/state_io.h),
// and one JSON-lines record per finished job streams to stdout as it
// completes. A summary (jobs, slices, checkpoints, steals) goes to stderr.
//
// Usage:
//   nfpd [options] [kernel.s ...]
//     --campaign        run the paper's 120-kernel set (Sec. VI): the 36
//                       MVC/HEVC and 24 FSE kernels, each in the float and
//                       fixed (soft-float) ABI
//     --workers N       worker thread count; default min(cores, 8)
//     --slice N         preemption grain in retired instructions; every job
//                       is checkpointed and re-queued each N instructions
//                       (0 = run each job phase to completion; default 0)
//     --max-insns N     per-job retirement budget (default 20e9)
//     --dispatch MODE   board dispatch: step|block|block-unchained|jit
//                       (default: jit where available, else block;
//                       accounting is bit-identical across modes)
//     --seed N          board noise seed (BoardConfig::seed)
//     --estimate / --no-estimate
//                       calibrate once and add Eq. 1 estimates to every
//                       record (default on)
//   Positional arguments are SPARC V8 assembly kernels, assembled at the
//   platform text base and appended after any --campaign set.
//   All value flags accept both "--flag N" and "--flag=N".
//   Exit status: 0 if every job succeeded, 1 otherwise, 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "asmkit/assembler.h"
#include "cli_common.h"
#include "mcc/compiler.h"
#include "nfp/service.h"
#include "sim/memmap.h"
#include "workloads/kernels.h"

namespace {

void usage() {
  std::printf(
      "usage: nfpd [--campaign] [--workers N] [--slice N] [--max-insns N]\n"
      "            [--dispatch MODE] [--seed N] [--estimate|--no-estimate]\n"
      "            [kernel.s ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  nfp::model::ServiceConfig cfg;
  bool campaign = false;
  bool have_dispatch = false;
  std::uint64_t slice = 0;
  std::uint64_t max_insns = nfp::board::Board::kDefaultMaxInsns;
  std::vector<std::string> kernel_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--campaign") {
      campaign = true;
    } else if (const char* v =
                   nfp::cli::flag_value("--workers", argc, argv, i, "nfpd")) {
      cfg.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (const char* v =
                   nfp::cli::flag_value("--slice", argc, argv, i, "nfpd")) {
      slice = std::strtoull(v, nullptr, 0);
    } else if (const char* v = nfp::cli::flag_value("--max-insns", argc, argv,
                                                    i, "nfpd")) {
      max_insns = std::strtoull(v, nullptr, 0);
    } else if (const char* v =
                   nfp::cli::flag_value("--dispatch", argc, argv, i, "nfpd")) {
      cfg.dispatch = nfp::cli::effective_dispatch(
          nfp::cli::parse_dispatch(v, "nfpd"), "nfpd");
      have_dispatch = true;
    } else if (const char* v =
                   nfp::cli::flag_value("--seed", argc, argv, i, "nfpd")) {
      cfg.board.seed = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (nfp::cli::bool_flag(arg, "--estimate", cfg.calibrate)) {
      // handled by bool_flag
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nfpd: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      kernel_paths.push_back(arg);
    }
  }
  (void)have_dispatch;
  if (!campaign && kernel_paths.empty()) {
    std::fprintf(stderr, "nfpd: no jobs (use --campaign or pass .s files)\n");
    usage();
    return 2;
  }

  std::vector<nfp::model::ServiceJob> jobs;
  try {
    if (campaign) {
      // The paper's full test set: every MVC and FSE kernel in both ABIs.
      std::vector<nfp::model::KernelJob> set;
      for (const auto abi :
           {nfp::mcc::FloatAbi::kHard, nfp::mcc::FloatAbi::kSoft}) {
        for (auto& j : nfp::workloads::make_mvc_jobs(abi)) {
          set.push_back(std::move(j));
        }
        for (auto& j : nfp::workloads::make_fse_jobs(abi)) {
          set.push_back(std::move(j));
        }
      }
      for (auto& j : set) {
        nfp::model::ServiceJob sj;
        sj.name = std::move(j.name);
        sj.program = std::move(j.program);
        sj.inputs = std::move(j.inputs);
        sj.max_insns = max_insns;
        sj.slice_insns = slice;
        jobs.push_back(std::move(sj));
      }
    }
    for (const std::string& path : kernel_paths) {
      nfp::model::ServiceJob sj;
      sj.name = path;
      sj.program = nfp::asmkit::assemble(nfp::cli::read_file(path, "nfpd"),
                                         nfp::sim::kTextBase);
      sj.max_insns = max_insns;
      sj.slice_insns = slice;
      jobs.push_back(std::move(sj));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nfpd: %s\n", e.what());
    return 2;
  }

  nfp::model::CampaignService service(cfg);
  service.set_sink([](const nfp::model::ServiceResult& r) {
    std::puts(nfp::model::result_json_line(r).c_str());
    std::fflush(stdout);
  });

  std::size_t failed = 0;
  const auto results = service.run_jobs(std::move(jobs));
  for (const auto& r : results) {
    if (!r.record.ok) ++failed;
  }
  const auto stats = service.stats();
  std::fprintf(stderr,
               "nfpd: %llu job(s) on %u worker(s) under %s dispatch: "
               "%llu slice(s), %llu checkpoint(s) (%llu bytes), "
               "%llu resume(s), %llu steal(s), %zu failure(s)\n",
               static_cast<unsigned long long>(stats.jobs_completed),
               service.workers(),
               nfp::cli::dispatch_name(service.board_dispatch()),
               static_cast<unsigned long long>(stats.slices),
               static_cast<unsigned long long>(stats.checkpoints),
               static_cast<unsigned long long>(stats.checkpoint_bytes),
               static_cast<unsigned long long>(stats.resumes),
               static_cast<unsigned long long>(stats.steals), failed);
  return failed == 0 ? 0 : 1;
}
