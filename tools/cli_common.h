// Small shared helpers for the nfp* command-line tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sim/executor.h"

namespace nfp::cli {

// Shared --dispatch value parsing (nfpc, nfpfuzz). Exits with a usage error
// on anything but step/block/block-unchained/jit.
inline sim::Dispatch parse_dispatch(const std::string& value,
                                    const char* tool) {
  if (value == "step") return sim::Dispatch::kStep;
  if (value == "block") return sim::Dispatch::kBlock;
  if (value == "block-unchained") return sim::Dispatch::kBlockUnchained;
  if (value == "jit") return sim::Dispatch::kJit;
  std::fprintf(stderr,
               "%s: unknown dispatch mode '%s' "
               "(expected step, block, block-unchained, or jit)\n",
               tool, value.c_str());
  std::exit(2);
}

inline const char* dispatch_name(sim::Dispatch dispatch) {
  switch (dispatch) {
    case sim::Dispatch::kStep: return "step";
    case sim::Dispatch::kBlock: return "block";
    case sim::Dispatch::kBlockUnchained: return "block-unchained";
    case sim::Dispatch::kJit: return "jit";
  }
  return "?";
}

// Degrades a requested dispatch mode to what the host can actually run:
// --dispatch=jit on a host without executable-page support (or a build with
// the backend compiled out) falls back to kBlock, warning once on stderr.
inline sim::Dispatch effective_dispatch(sim::Dispatch requested,
                                        const char* tool) {
  if (requested == sim::Dispatch::kJit && !sim::jit_available()) {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "%s: warning: jit dispatch unavailable on this host; "
                   "falling back to block\n",
                   tool);
    }
    return sim::Dispatch::kBlock;
  }
  return requested;
}

// Result of matching one argv slot against a value-taking flag.
enum class FlagMatch {
  kNoMatch,       // argv[i] is not this flag
  kMatched,       // value produced (i advanced for the two-token form)
  kMissingValue,  // "--name" at end of argv, or empty "--name="
};

// Pure core of flag_value, shared with the tests: accepts "--name value" and
// "--name=value". An empty inline value ("--name=") is a usage error, not an
// empty string — every flag in these tools takes a non-empty operand.
inline FlagMatch match_flag_value(const std::string& name, int argc,
                                  char** argv, int& i, const char** value) {
  const std::string arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) return FlagMatch::kMissingValue;
    *value = argv[++i];
    return FlagMatch::kMatched;
  }
  if (arg.rfind(name + "=", 0) == 0) {
    *value = argv[i] + name.size() + 1;
    return **value == '\0' ? FlagMatch::kMissingValue : FlagMatch::kMatched;
  }
  return FlagMatch::kNoMatch;
}

// Accepts "--name=value" or "--name value"; returns nullptr if argv[i] is
// not this flag, and exits with a usage error if the value is missing.
inline const char* flag_value(const std::string& name, int argc, char** argv,
                              int& i, const char* tool) {
  const char* value = nullptr;
  switch (match_flag_value(name, argc, argv, i, &value)) {
    case FlagMatch::kNoMatch: return nullptr;
    case FlagMatch::kMatched: return value;
    case FlagMatch::kMissingValue:
      std::fprintf(stderr, "%s: %s needs a value\n", tool, name.c_str());
      std::exit(2);
  }
  return nullptr;
}

// Matches a "--name" / "--no-name" toggle pair; `name` is the positive
// spelling ("--board"). Returns true if argv[i] was either form, with `out`
// set accordingly.
inline bool bool_flag(const std::string& arg, const std::string& name,
                      bool& out) {
  if (arg == name) {
    out = true;
    return true;
  }
  if (arg.rfind("--", 0) == 0 && arg == "--no-" + name.substr(2)) {
    out = false;
    return true;
  }
  return false;
}

// Parses one repeated "--loop-bound ADDR=N" (or "--loop-total ADDR=N")
// operand into the annotation map. ADDR and N accept any strtoul base, so
// "0x40000010=12" and "1073741840=12" are equivalent. N == 0 is rejected
// unless `allow_zero` — a zero relative bound is meaningless, but a zero
// absolute total legitimately pins a never-executed loop. Returns false on
// malformed text (caller reports the usage error).
inline bool parse_loop_bound(const char* text,
                             std::map<std::uint32_t, std::uint64_t>& bounds,
                             bool allow_zero = false) {
  const char* eq = std::strchr(text, '=');
  if (eq == nullptr || eq == text || eq[1] == '\0') return false;
  char* end = nullptr;
  const unsigned long addr = std::strtoul(text, &end, 0);
  if (end != eq) return false;
  const unsigned long long n = std::strtoull(eq + 1, &end, 0);
  if (*end != '\0' || (n == 0 && !allow_zero)) return false;
  bounds[static_cast<std::uint32_t>(addr)] = n;
  return true;
}

// Reads a whole file into a string, or exits with a usage error.
inline std::string read_file(const std::string& path, const char* tool) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", tool, path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace nfp::cli
